open Rbb_core

(* Domain-parallel counterpart of Counts_process, paired with it the way
   Sharded is paired with Process: same randomness law, bit-identical
   trajectories, parallelism changes wall-clock only.

   The exchange between shards is a (source block, destination block)
   count matrix instead of per-ball messages: phase A has each source
   block scan its loads slice and split its released total over
   destination blocks into its private matrix row; after a barrier,
   phase B has each destination block column-sum the matrix, place its
   arrival total down to bins, and settle its slice in place.  Rows and
   bin slices are owned by exactly one worker per phase, so the only
   shared mutable state between barriers is the matrix, written
   row-exclusively in A and read-only in B. *)

type t = {
  rng : Rbb_prng.Rng.t;  (* the creation stream, as in Sharded *)
  engine : Rbb_prng.Rng.engine;
  master : int64;
  capacity : int;
  loads : int array;
  arrivals : int array;  (* scratch; block slices overwritten in phase B *)
  matrix : int array array;  (* matrix.(src).(dst): row-exclusive in phase A *)
  m : int;
  blocks : int;
  domains : int;
  workers : int;  (* min domains blocks *)
  pools : Rbb_prng.Multinomial.t array;  (* one bit pool per worker *)
  parts : (int * int) array;  (* per-worker (max_load, empty) reduce input *)
  telemetry : Telemetry.t;
  tracer : Tracer.t;
  mutable round : int;
  mutable max_load : int;
  mutable empty : int;
}

let make ~telemetry ~tracer ~capacity ~domains ~rng ~master ~round ~init ~who =
  if capacity < 1 then invalid_arg (who ^ ": capacity < 1");
  let loads = Config.loads init in
  let bins = Array.length loads in
  let domains =
    match domains with Some d -> d | None -> Parallel.default_domains ()
  in
  if domains < 1 then invalid_arg (who ^ ": domains < 1");
  let blocks = Process.shard_count ~bins in
  let workers = Stdlib.min domains blocks in
  {
    rng;
    engine = Rbb_prng.Rng.engine rng;
    master;
    capacity;
    loads;
    arrivals = Array.make bins 0;
    matrix = Array.init blocks (fun _ -> Array.make blocks 0);
    m = Config.balls init;
    blocks;
    domains;
    workers;
    pools = Array.init workers (fun _ -> Rbb_prng.Multinomial.create rng);
    parts = Array.make workers (0, 0);
    telemetry;
    tracer;
    round;
    max_load = Config.max_load init;
    empty = Config.empty_bins init;
  }

let create ?(telemetry = Telemetry.noop) ?(tracer = Tracer.noop)
    ?(capacity = 1) ?domains ~rng ~init () =
  (* The same single draw Counts_process.create (and Process.create)
     makes: same rng state in, same master key out. *)
  let master = Process.shard_master rng in
  make ~telemetry ~tracer ~capacity ~domains ~rng ~master ~round:0 ~init
    ~who:"Sharded_counts.create"

let restore ?(telemetry = Telemetry.noop) ?(tracer = Tracer.noop)
    ?(capacity = 1) ?domains ~rng ~master ~round ~init () =
  if round < 0 then invalid_arg "Sharded_counts.restore: round < 0";
  make ~telemetry ~tracer ~capacity ~domains ~rng ~master ~round ~init
    ~who:"Sharded_counts.restore"

let n t = Array.length t.loads
let balls t = t.m
let round t = t.round
let domains t = t.domains
let max_load t = t.max_load
let empty_bins t = t.empty
let rng t = t.rng
let master t = t.master
let capacity t = t.capacity
let telemetry t = t.telemetry

let load t u =
  if u < 0 || u >= n t then invalid_arg "Sharded_counts.load: out of range";
  t.loads.(u)

let config t = Config.of_array t.loads

let set_config t q =
  if Config.n q <> n t then
    invalid_arg "Sharded_counts.set_config: bin count differs";
  if Config.balls q <> t.m then
    invalid_arg "Sharded_counts.set_config: ball count differs";
  Array.blit (Config.unsafe_loads q) 0 t.loads 0 (n t);
  t.max_load <- Config.max_load q;
  t.empty <- Config.empty_bins q

(* The contiguous block range worker [w] owns (same for both phases). *)
let block_range t w =
  (w * t.blocks / t.workers, (w + 1) * t.blocks / t.workers)

(* Phase A for worker [w]: every owned source block scans its loads
   slice for the released total and splits it over destination blocks
   into its private matrix row.  All randomness comes from the block's
   release stream, so worker assignment cannot change a draw.  Returns
   the number of blocks processed (for the telemetry counter). *)
let release_phase t ~rnd w =
  let pool = t.pools.(w) in
  let b_lo, b_hi = block_range t w in
  for b = b_lo to b_hi - 1 do
    let row = t.matrix.(b) in
    Array.fill row 0 t.blocks 0;
    ignore
      (Counts_process.release_block ~pool ~engine:t.engine ~master:t.master
         ~round:rnd ~loads:t.loads ~capacity:t.capacity ~block:b ~into:row)
  done;
  b_hi - b_lo

(* Phase B for worker [w]: every owned destination block column-sums
   the matrix, places its arrival total over its bins, and settles its
   slice in place; returns the worker's (max_load, empty) part. *)
let place_phase t ~rnd w =
  let pool = t.pools.(w) in
  let bins = n t in
  let b_lo, b_hi = block_range t w in
  let max_l = ref 0 and empty = ref 0 in
  for d = b_lo to b_hi - 1 do
    let count = ref 0 in
    for b = 0 to t.blocks - 1 do
      count := !count + Array.unsafe_get (Array.unsafe_get t.matrix b) d
    done;
    Counts_process.place_block ~pool ~engine:t.engine ~master:t.master
      ~round:rnd ~bins ~arrivals:t.arrivals ~block:d ~count:!count;
    let lo, hi = Process.shard_bounds ~bins ~shard:d in
    let ml, e =
      Process.step_settle ~loads:t.loads ~arrivals:t.arrivals
        ~capacity:t.capacity ~lo ~hi
    in
    if ml > !max_l then max_l := ml;
    empty := !empty + e
  done;
  (!max_l, !empty)

let reduce_parts t =
  let max_l = ref 0 and empty = ref 0 in
  Array.iter
    (fun (m, e) ->
      if m > !max_l then max_l := m;
      empty := !empty + e)
    t.parts;
  t.max_load <- !max_l;
  t.empty <- !empty

let run_inline t ~rounds =
  let tel = t.telemetry in
  let tr = t.tracer in
  let tel_on = Telemetry.enabled tel in
  let tr_on = Tracer.enabled tr in
  let timed = tel_on || tr_on in
  let now () =
    if tel_on then Telemetry.now tel else if tr_on then Tracer.now tr else 0L
  in
  let blocks_done = ref 0 in
  for _ = 1 to rounds do
    let rnd = t.round in
    let t0 = if timed then now () else 0L in
    for w = 0 to t.workers - 1 do
      blocks_done := !blocks_done + release_phase t ~rnd w
    done;
    let t1 = if timed then now () else 0L in
    for w = 0 to t.workers - 1 do
      t.parts.(w) <- place_phase t ~rnd w
    done;
    reduce_parts t;
    t.round <- t.round + 1;
    if timed then begin
      let t2 = now () in
      if tel_on then begin
        Telemetry.timer_add tel "counts_sharded.release" (Int64.sub t1 t0);
        Telemetry.timer_add tel "counts_sharded.place" (Int64.sub t2 t1);
        Telemetry.record_latency tel (Int64.sub t2 t0)
      end;
      if tr_on then begin
        Tracer.span tr ~name:"counts_sharded.release" ~worker:0 ~round:t.round
          ~t0 ~t1;
        Tracer.span tr ~name:"counts_sharded.place" ~worker:0 ~round:t.round
          ~t0:t1 ~t1:t2;
        Tracer.observe tr ~round:t.round ~max_load:t.max_load
          ~empty_bins:t.empty ~balls:t.m
      end
    end
  done;
  if tel_on then begin
    Telemetry.add tel "counts_sharded.rounds" rounds;
    Telemetry.add tel "counts_sharded.release.blocks" !blocks_done
  end

let run_pooled t ~rounds =
  (* One spawn per worker for the whole run, two barriers per round, as
     in Sharded.run_pooled; phases here have no failure handling (the
     counts engine has no failpoint surface), which keeps the loop to
     the two rendezvous.  Telemetry accumulates in per-worker locals
     flushed once after the loop; worker 0 records latency and the
     per-round observable (race-free after the second barrier, before
     its next first barrier). *)
  let barrier = Parallel.Barrier.create t.workers in
  let r0 = t.round in
  let tel = t.telemetry in
  let tr = t.tracer in
  let tel_on = Telemetry.enabled tel in
  let tr_on = Tracer.enabled tr in
  let timed = tel_on || tr_on in
  let work w () =
    let now () =
      if tel_on then Telemetry.now tel else if tr_on then Tracer.now tr else 0L
    in
    let tick r t0 t1 = r := Int64.add !r (Int64.sub t1 t0) in
    let release_ns = ref 0L and place_ns = ref 0L and barrier_ns = ref 0L in
    let blocks_done = ref 0 in
    for rnd = r0 to r0 + rounds - 1 do
      let r = rnd + 1 in
      let t0 = now () in
      blocks_done := !blocks_done + release_phase t ~rnd w;
      let t1 = now () in
      if tr_on then
        Tracer.span tr ~name:"counts_sharded.release" ~worker:w ~round:r ~t0
          ~t1;
      Parallel.Barrier.wait barrier;
      let t2 = now () in
      t.parts.(w) <- place_phase t ~rnd w;
      let t3 = now () in
      if tr_on then
        Tracer.span tr ~name:"counts_sharded.place" ~worker:w ~round:r ~t0:t2
          ~t1:t3;
      Parallel.Barrier.wait barrier;
      let t4 = now () in
      tick release_ns t0 t1;
      tick place_ns t2 t3;
      tick barrier_ns t1 t2;
      tick barrier_ns t3 t4;
      if timed && w = 0 then Telemetry.record_latency tel (Int64.sub t4 t0);
      if tr_on && w = 0 then begin
        let max_l = ref 0 and empty = ref 0 in
        Array.iter
          (fun (m, e) ->
            if m > !max_l then max_l := m;
            empty := !empty + e)
          t.parts;
        Tracer.observe tr ~round:r ~max_load:!max_l ~empty_bins:!empty
          ~balls:t.m
      end
    done;
    if tel_on then begin
      Telemetry.timer_add tel "counts_sharded.release" !release_ns;
      Telemetry.timer_add tel "counts_sharded.place" !place_ns;
      Telemetry.timer_add tel "counts_sharded.barrier_wait" !barrier_ns;
      Telemetry.add tel "counts_sharded.release.blocks" !blocks_done
    end
  in
  List.iter Domain.join (List.init t.workers (fun w -> Domain.spawn (work w)));
  reduce_parts t;
  t.round <- r0 + rounds;
  if tel_on then Telemetry.add tel "counts_sharded.rounds" rounds

let run t ~rounds =
  if rounds < 0 then invalid_arg "Sharded_counts.run: rounds < 0";
  if rounds > 0 then
    if t.workers = 1 then run_inline t ~rounds else run_pooled t ~rounds

let step t = run t ~rounds:1

let run_until t ~max_rounds ~stop =
  if max_rounds < 0 then invalid_arg "Sharded_counts.run_until: max_rounds < 0";
  if stop t then Some t.round
  else begin
    let rec go k =
      if k >= max_rounds then None
      else begin
        step t;
        if stop t then Some t.round else go (k + 1)
      end
    in
    go 0
  end

let run_until_legitimate ?beta t ~max_rounds =
  let threshold = Config.legitimacy_threshold ?beta ~m:t.m (n t) in
  run_until t ~max_rounds ~stop:(fun t -> t.max_load <= threshold)

let adversary_driver : t Adversary.driver =
  { Adversary.step; config; set_config; rng; n; max_load; empty_bins }
