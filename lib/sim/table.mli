(** Plain-text result tables.

    Every experiment prints one of these: a header row, aligned columns,
    and an optional caption — the closest plain-text analogue of a
    paper table. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from the header. *)

val add_float_row : t -> fmt:string -> float list -> unit
(** Formats every cell with [fmt] (e.g. ["%.2f"]). *)

val render : ?caption:string -> t -> string
(** Column-aligned rendering with a rule under the header. *)

val print : ?caption:string -> t -> unit
(** [render] to stdout followed by a newline. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
