(* Retry supervision for restartable phase work.  The phases of the
   sharded engine are pure functions of committed state (parity load
   buffers, private arrival buffers, per-(round, shard) PRNG streams),
   so a failed slice can simply be re-executed: the supervisor wraps
   each execution, retries with capped exponential backoff, reports
   every fault to an event hook, and raises [Budget_exhausted] once the
   retry budget is spent — at which point the engine degrades rather
   than crashes. *)

type event = {
  name : string;
  round : int;
  shard : int;
  attempt : int;
  error : string;
  backoff_ns : int64;
  giving_up : bool;
}

exception
  Budget_exhausted of {
    name : string;
    round : int;
    shard : int;
    attempts : int;
    last : exn;
  }

let () =
  Printexc.register_printer (function
    | Budget_exhausted { name; round; shard; attempts; last } ->
        Some
          (Printf.sprintf
             "Supervisor.Budget_exhausted(%s, round=%d, shard=%d, attempts=%d, \
              last=%s)"
             name round shard attempts (Printexc.to_string last))
    | _ -> None)

type active = {
  retries : int;
  backoff_ns : int64;
  max_backoff_ns : int64;
  jitter : int64 option;  (* seed for decorrelated backoff jitter *)
  sleep : int64 -> unit;
  on_event : event -> unit;
}

type t = Noop | Active of active

let noop = Noop

let default_sleep ns =
  if Int64.compare ns 0L > 0 then Unix.sleepf (Int64.to_float ns *. 1e-9)

let create ?(retries = 3) ?(backoff_ns = 1_000_000L)
    ?(max_backoff_ns = 100_000_000L) ?jitter ?(sleep = default_sleep)
    ?(on_event = fun _ -> ()) () =
  if retries < 0 then invalid_arg "Supervisor.create: retries < 0";
  if Int64.compare backoff_ns 0L < 0 then
    invalid_arg "Supervisor.create: backoff_ns < 0";
  Active { retries; backoff_ns; max_backoff_ns; jitter; sleep; on_event }

let enabled = function Noop -> false | Active _ -> true
let retries = function Noop -> 0 | Active a -> a.retries

let with_on_event t hook =
  match t with
  | Noop -> Noop
  | Active a ->
      let prev = a.on_event in
      Active
        {
          a with
          on_event =
            (fun e ->
              prev e;
              hook e);
        }

(* backoff_ns * 2^attempt, saturating at max_backoff_ns.  With a jitter
   seed the exponential step is scaled by a uniform factor in [0.5, 1.5)
   drawn by hashing (seed, name, round, shard, attempt) — each failed
   slice backs off on its own decorrelated schedule, so a whole pool of
   workers tripped by one fault does not retry in lockstep and re-storm
   the shared resource.  The draw is the same stable hash Failpoint
   uses, so jittered schedules replay identically run-to-run and are
   pinnable in golden tests. *)
let backoff_for a ~name ~round ~shard ~attempt =
  let shift = Stdlib.min attempt 20 in
  let b = Int64.shift_left a.backoff_ns shift in
  let b =
    if Int64.compare b a.max_backoff_ns > 0 || Int64.compare b 0L < 0 then
      a.max_backoff_ns
    else b
  in
  match a.jitter with
  | None -> b
  | Some seed ->
      let u = Failpoint.hash_unit ~seed ~name ~round ~shard ~attempt in
      let j = Int64.of_float (Int64.to_float b *. (0.5 +. u)) in
      if Int64.compare j a.max_backoff_ns > 0 then a.max_backoff_ns else j

let supervise t ~name ~round ~shard f =
  match t with
  | Noop -> f ~attempt:0
  | Active a ->
      let rec go attempt =
        match f ~attempt with
        | v -> v
        | exception exn ->
            let giving_up = attempt >= a.retries in
            let backoff_ns =
              if giving_up then 0L else backoff_for a ~name ~round ~shard ~attempt
            in
            a.on_event
              {
                name;
                round;
                shard;
                attempt;
                error = Printexc.to_string exn;
                backoff_ns;
                giving_up;
              };
            if giving_up then
              raise
                (Budget_exhausted
                   { name; round; shard; attempts = attempt + 1; last = exn })
            else begin
              a.sleep backoff_ns;
              go (attempt + 1)
            end
      in
      go 0
