(** Experiment registry: the per-claim reproduction targets listed in
    DESIGN.md §4, addressable by id from the bench driver and the CLI.

    Each experiment prints a self-contained table (plus fit/verdict
    lines).  [quick] mode shrinks sizes for smoke tests; full mode is
    what EXPERIMENTS.md records. *)

type t = {
  id : string;  (** e.g. "e1" *)
  title : string;
  claim : string;  (** the paper statement being reproduced *)
  run : quick:bool -> unit;
}

val make : id:string -> title:string -> claim:string -> (quick:bool -> unit) -> t

val run : t -> quick:bool -> unit
(** Prints a banner (id, title, claim), then the experiment's output. *)

val find : t list -> string -> t option
(** Lookup by case-insensitive id. *)

val run_selected : t list -> ids:string list -> quick:bool -> unit
(** Runs the listed experiments in order; unknown ids raise
    [Invalid_argument]. *)

val run_all : t list -> quick:bool -> unit
