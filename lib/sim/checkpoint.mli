(** Crash-safe checkpoint / resume (schema [rbb.checkpoint/1]).

    A checkpoint captures everything a trajectory's future depends on —
    round counter, full configuration, the creation-stream PRNG state
    ({!Rbb_prng.Rng.snapshot}) with the launch-stream master key, and
    the deterministic {!Telemetry} counters.  The per-round launch
    streams are pure functions of [(master, round, block)]
    ({!Rbb_prng.Stream.for_shard}) and need no state of their own, so
    resuming is exact: {b a run interrupted at round k and resumed is
    bit-identical to the run that never stopped}, on both the
    sequential {!Rbb_core.Process} and the domain-parallel {!Sharded}
    engine (and across them, since the engines are themselves
    bit-identical).

    The file format is NDJSON in the {!Jsonl} dialect (flat objects,
    sorted keys, fixed number formats) — deterministic byte-for-byte
    for a fixed state.  Int64 values travel as hex strings (OCaml's
    int is 63-bit).  Files are published atomically ({!Fileio}: unique
    temp, fsync, rename), and a record-count trailer rejects truncation
    arriving through other channels.

    Deliberately {e not} captured: wall-clock telemetry (timers,
    latency histograms — meaningless across a crash), tracer sink
    state (traces are append streams owned by each run), and weighted
    ([?weights]) processes, which {!capture_process} /
    {!capture_sharded} reject. *)

type kind =
  | Balls  (** per-ball engines: {!Rbb_core.Process} / {!Sharded} *)
  | Counts
      (** count-based engines: {!Rbb_core.Counts_process} /
          {!Sharded_counts} *)

type snapshot = {
  round : int;  (** completed rounds *)
  config : Rbb_core.Config.t;  (** configuration after [round] rounds *)
  rng : Rbb_prng.Rng.snapshot;  (** creation-stream state *)
  master : int64;  (** launch-stream master key *)
  kind : kind;  (** which engine family produced the trajectory *)
  d_choices : int;  (** always 1 when [kind = Counts] *)
  capacity : int;
  counters : (string * int) list;  (** telemetry counters, sorted *)
}

val capture_process : ?telemetry:Telemetry.t -> Rbb_core.Process.t -> snapshot
(** Snapshot a sequential engine (counters from [telemetry], default
    none).
    @raise Invalid_argument on a weighted process. *)

val capture_sharded : Sharded.t -> snapshot
(** Snapshot a sharded engine (counters from its own attached sink).
    @raise Invalid_argument on a weighted engine. *)

val capture_counts :
  ?telemetry:Telemetry.t -> Rbb_core.Counts_process.t -> snapshot
(** Snapshot a sequential counts engine ([kind = Counts]).  The file
    gains an ["engine_kind"] header field; balls checkpoints carry no
    such field, so their bytes are unchanged by the counts extension. *)

val capture_sharded_counts : Sharded_counts.t -> snapshot
(** Snapshot a parallel counts engine (counters from its attached
    sink). *)

val save : path:string -> snapshot -> unit
(** Write atomically: the file at [path] is either the complete old
    content or the complete new one, never a torn mixture, even across
    power loss (the temp file is fsynced before the rename).  The end
    record carries a CRC-32 trailer ({!Integrity}) over every
    preceding byte, so {!load} detects any in-place corruption. *)

val load :
  ?on_warning:(string -> unit) ->
  path:string ->
  unit ->
  (snapshot, string) result
(** Parse, checksum and validate.  Errors are prose (unreadable file,
    schema mismatch, truncation, CRC mismatch, inconsistent loads,
    invalid PRNG state...) suitable for printing verbatim; the CLI pins
    them in cram tests.  A trailer-less file from before the CRC-32
    era still loads, and [on_warning] (default: ignore) is told its
    content went unverified. *)

val to_process : snapshot -> Rbb_core.Process.t
(** Rebuild the sequential engine, consuming no randomness
    ({!Rbb_core.Process.restore}).
    @raise Invalid_argument if [kind = Counts]: the engine families
    consume randomness under different laws, so a cross-kind resume
    would silently change the trajectory while looking exact. *)

val to_sharded :
  ?telemetry:Telemetry.t ->
  ?tracer:Tracer.t ->
  ?failpoints:Failpoint.t ->
  ?supervisor:Supervisor.t ->
  ?shards:int ->
  ?domains:int ->
  snapshot ->
  Sharded.t
(** Rebuild the sharded engine ({!Sharded.restore}).  [shards] and
    [domains] may differ from the checkpointing run's — they never
    affect results.
    @raise Invalid_argument if [kind = Counts]. *)

val to_counts : snapshot -> Rbb_core.Counts_process.t
(** Rebuild the sequential counts engine
    ({!Rbb_core.Counts_process.restore}).
    @raise Invalid_argument if [kind = Balls]. *)

val to_sharded_counts :
  ?telemetry:Telemetry.t ->
  ?tracer:Tracer.t ->
  ?domains:int ->
  snapshot ->
  Sharded_counts.t
(** Rebuild the parallel counts engine ({!Sharded_counts.restore});
    [domains] may differ from the checkpointing run's.
    @raise Invalid_argument if [kind = Balls]. *)

val restore_counters : Telemetry.t -> snapshot -> unit
(** Seed a (fresh) telemetry sink with the checkpointed counters, so a
    resumed run's final counter totals equal the uninterrupted run's. *)
