(** Structured telemetry: counters, gauges, timers and a per-round
    latency histogram, with deterministic JSON export.

    Every quantitative claim reproduced by this repo flows through the
    measurement path, and the production-scale north star needs
    machine-readable observability; this module is the shared sink.  The
    engines are wired to it — {!Rbb_core.Process.run} via {!probe},
    {!Sharded} via its [?telemetry] argument, {!Parallel.map_domains}
    via [?telemetry] — and the CLI exports it with
    [--telemetry-json PATH].

    {2 Pay-for-what-you-use}

    {!noop} is the default sink everywhere.  Every operation on it is a
    single pattern match (no clock read, no lock, no allocation), so
    instrumented hot loops run at the same speed as uninstrumented ones;
    [bench/micro.ml] guards this with an overhead assertion.  An active
    sink serializes updates through one mutex and is safe to share
    across domains.

    {2 Determinism}

    JSON rendering sorts every key ([String.compare]) and uses fixed
    number formats, so for a fixed seed the counter and gauge portions
    of the document are bit-stable across runs and can be pinned by cram
    tests.  Timer values and the latency histogram reflect wall-clock
    measurements and vary run to run (the {e keys} are still stable). *)

type t

val noop : t
(** Inert sink: all operations are no-ops, [enabled] is false. *)

val create : ?clock:(unit -> int64) -> unit -> t
(** A fresh active sink.  [clock] (default: the process-wide monotonic
    clock, nanoseconds) exists so tests can inject a deterministic
    clock and pin complete JSON documents. *)

val enabled : t -> bool

val now : t -> int64
(** Current clock reading in nanoseconds (0 on {!noop}). *)

(** {2 Instruments} *)

val add : t -> string -> int -> unit
(** [add t name k] bumps counter [name] by [k] (created at 0). *)

val incr : t -> string -> unit
(** [incr t name] is [add t name 1]. *)

val set_gauge : t -> string -> float -> unit
(** [set_gauge t name v] sets gauge [name] to [v] (last write wins). *)

val timer_add : t -> string -> int64 -> unit
(** [timer_add t name ns] accumulates [ns] into timer [name] and bumps
    its call count. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f ()] and accumulates its duration into timer
    [name] (also on exception).  On {!noop} this is exactly [f ()]. *)

val record_latency : t -> int64 -> unit
(** Record one per-round latency sample into the power-of-two histogram
    (bucket 0 holds samples [<= 0] ns; bucket [i >= 1] holds samples in
    [[2^(i-1), 2^i - 1]]). *)

(** {2 Readers} *)

val counter : t -> string -> int
(** Current counter value (0 when absent or on {!noop}). *)

val gauge : t -> string -> float option

val timer : t -> string -> int * int64
(** [(calls, total_ns)], [(0, 0L)] when absent or on {!noop}. *)

val latency_count : t -> int
(** Total number of latency samples recorded. *)

val counters : t -> (string * int) list
(** All counters, sorted by name ([[]] on {!noop}).  This is the slice
    of the registry {!Checkpoint} persists: counters are deterministic
    for a fixed seed, so a resumed run can continue them and end with
    the same totals as an uninterrupted one (timers and the latency
    histogram are wall-clock measurements and are deliberately not
    carried across a resume). *)

val gauges : t -> (string * float) list
(** All gauges, sorted by name ([[]] on {!noop}). *)

val timers : t -> (string * (int * int64)) list
(** All timers as [(name, (calls, total_ns))], sorted by name ([[]] on
    {!noop}). *)

(** {2 Export} *)

val to_json_string : t -> string
(** The whole registry as a JSON document (no trailing newline):
    sections [counters], [gauges], [timers] (objects keyed by sorted
    metric name) and [round_latency_ns] ([count] plus the non-empty
    histogram buckets as [{ "le", "count" }] pairs).  {!noop} renders
    the empty document. *)

val write_json : t -> path:string -> unit
(** Write {!to_json_string} (plus a trailing newline) to [path],
    atomically ({!Fileio.write_atomic}). *)

val counters_json : t -> string
(** One-line JSON document ([{"counters":{...},"schema":
    "rbb.telemetry-counters/1"}], keys sorted) holding only the
    counters — the deterministic, resume-stable slice of the registry.
    Embedded in daemon job-result files, where byte-stability between a
    resumed and an uninterrupted job is asserted. *)

val probe : t -> Rbb_core.Probe.t
(** A probe feeding this sink, for instrumenting core engines
    ({!Rbb_core.Process.run}'s [?probe]).  [probe noop] is
    {!Rbb_core.Probe.noop}. *)
