(** Minimal CSV output (RFC-4180-style quoting) for exporting experiment
    series to external plotting tools. *)

val escape : string -> string
(** Quotes the field if it contains a comma, quote or newline. *)

val row : string list -> string
(** One encoded line, without trailing newline. *)

val to_string : header:string list -> string list list -> string
(** Full document with header line. *)

val write_file : path:string -> header:string list -> string list list -> unit
(** Write the document atomically ({!Fileio.write_atomic}): the file
    appears under [path] complete or not at all. *)
