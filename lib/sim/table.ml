type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity differs from header";
  t.rows <- row :: t.rows

let add_float_row t ~fmt values =
  add_row t (List.map (fun v -> Printf.sprintf (Scanf.format_from_string fmt "%f") v) values)

let render ?caption t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let arity = List.length t.headers in
  let widths = Array.make arity 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 1024 in
  (match caption with
  | Some c ->
      Buffer.add_string buf c;
      Buffer.add_char buf '\n'
  | None -> ());
  let put_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        (* Right-align all but the first column: numbers read better. *)
        let pad = widths.(i) - String.length cell in
        if i = 0 then begin
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make pad ' ')
        end
        else begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end)
      row;
    Buffer.add_char buf '\n'
  in
  put_row t.headers;
  let rule_width =
    Array.fold_left ( + ) 0 widths + (2 * (arity - 1))
  in
  Buffer.add_string buf (String.make rule_width '-');
  Buffer.add_char buf '\n';
  List.iter put_row rows;
  Buffer.contents buf

let print ?caption t = print_string (render ?caption t)

let cell_int = string_of_int
let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_bool b = if b then "yes" else "no"
