(** Domain-parallel count-based engine.

    The parallel counterpart of {!Rbb_core.Counts_process}, paired with
    it exactly as {!Sharded} is paired with {!Rbb_core.Process}: same
    randomness law, bit-identical trajectories from the same creation
    rng state, for {e every} domain count.  Parallelism changes
    wall-clock time only.

    Instead of exchanging per-ball messages, the workers exchange one
    [(source block, destination block)] count matrix per round:

    + {b release} — every source block (4096 bins,
      {!Rbb_core.Counts_process.block_bits}) scans its loads slice for
      the released total and splits it over destination blocks by
      recursive binomial splitting
      ({!Rbb_core.Counts_process.release_block}), writing its private
      matrix row;
    + {b place} — after the barrier, every destination block column-sums
      the matrix, splits its arrival total down to bins
      ({!Rbb_core.Counts_process.place_block}) and settles its slice,
      with a per-range reduce maintaining max-load / empty-bins.

    Rows in phase A and bin slices in phase B are owned by exactly one
    worker, so the matrix is the only cross-worker state and it is
    written row-exclusively.  Each worker keeps its own
    {!Rbb_prng.Multinomial} bit pool, reset to the owning block's
    stream before every split — worker assignment cannot change a draw.

    Counts-engine restrictions apply: uniform re-assignment only (no
    [d_choices], no [weights]); no failpoint / supervisor surface (the
    phases complete in microseconds; use {!Sharded} to study fault
    injection). *)

type t

val create :
  ?telemetry:Telemetry.t ->
  ?tracer:Tracer.t ->
  ?capacity:int ->
  ?domains:int ->
  rng:Rbb_prng.Rng.t ->
  init:Rbb_core.Config.t ->
  unit ->
  t
(** [create ~rng ~init ()] mirrors {!Rbb_core.Counts_process.create}
    and consumes the same single master-key draw from [rng], so the
    sequential and parallel counts engines produce bit-identical
    trajectories from the same rng state.  [domains] (default
    {!Parallel.default_domains}) never affects results.

    [telemetry] (default {!Telemetry.noop}) receives per-phase timers
    [counts_sharded.release] / [counts_sharded.place] (plus
    [counts_sharded.barrier_wait] on the pooled multi-worker path), a
    per-round latency sample, and the counters [counts_sharded.rounds]
    and [counts_sharded.release.blocks].  [tracer] (default
    {!Tracer.noop}) streams one observable per completed round (reduced
    by worker 0 after the settle barrier), per-worker phase spans
    [counts_sharded.release] / [counts_sharded.place], and the
    unconditional threshold events.  Neither sink affects the
    trajectory.
    @raise Invalid_argument if [capacity < 1] or [domains < 1]. *)

val restore :
  ?telemetry:Telemetry.t ->
  ?tracer:Tracer.t ->
  ?capacity:int ->
  ?domains:int ->
  rng:Rbb_prng.Rng.t ->
  master:int64 ->
  round:int ->
  init:Rbb_core.Config.t ->
  unit ->
  t
(** Rebuild mid-trajectory from checkpointed state, consuming no
    randomness ({!Rbb_core.Counts_process.restore}).  [domains] may
    differ from the checkpointing run's.
    @raise Invalid_argument if [capacity < 1], [domains < 1] or
    [round < 0]. *)

val step : t -> unit
val run : t -> rounds:int -> unit
(** @raise Invalid_argument if [rounds < 0]. *)

val run_until : t -> max_rounds:int -> stop:(t -> bool) -> int option
(** Same contract as {!Rbb_core.Process.run_until}.
    @raise Invalid_argument if [max_rounds < 0]. *)

val run_until_legitimate : ?beta:float -> t -> max_rounds:int -> int option

val round : t -> int
val n : t -> int
val balls : t -> int

val domains : t -> int
(** Worker domain count (wall-clock only, never results). *)

val load : t -> int -> int
val max_load : t -> int
val empty_bins : t -> int

val config : t -> Rbb_core.Config.t
val set_config : t -> Rbb_core.Config.t -> unit
(** The adversary's move; see {!Rbb_core.Process.set_config}. *)

val rng : t -> Rbb_prng.Rng.t
(** The creation stream (after its master-key draw), which the
    adversary and checkpoint layers continue. *)

val master : t -> int64
val capacity : t -> int

val telemetry : t -> Telemetry.t
(** The attached telemetry sink ({!Telemetry.noop} when none). *)

val adversary_driver : t Rbb_core.Adversary.driver
(** Drive this engine under
    {!Rbb_core.Adversary.run_with_faults_driver}; with the same
    creation rng state as a {!Rbb_core.Counts_process} the perturbation
    draws match draw for draw. *)
