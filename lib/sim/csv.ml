let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row cells = String.concat "," (List.map escape cells)

let to_string ~header rows =
  String.concat "\n" (row header :: List.map row rows) ^ "\n"

let write_file ~path ~header rows =
  Fileio.write_atomic ~path (fun oc ->
      output_string oc (to_string ~header rows))
