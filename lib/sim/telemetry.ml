(* Counters / gauges / timers registry with deterministic JSON
   rendering.  All mutation goes through one mutex, so a sink can be
   shared by the worker domains of Sharded / Parallel; the noop sink
   short-circuits every operation to a single pattern match. *)

type timer = { mutable calls : int; mutable total_ns : int64 }

(* Power-of-two latency buckets: index 0 holds samples <= 0 ns, index
   i >= 1 holds samples in [2^(i-1), 2^i - 1]. *)
let buckets = 64

type sink = {
  clock : unit -> int64;
  lock : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  latency : int array;
  mutable latency_count : int;
}

type t = Noop | Active of sink

let noop = Noop

let create ?(clock = Monotonic_clock.now) () =
  Active
    {
      clock;
      lock = Mutex.create ();
      counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      timers = Hashtbl.create 16;
      latency = Array.make buckets 0;
      latency_count = 0;
    }

let enabled = function Noop -> false | Active _ -> true
let now = function Noop -> 0L | Active s -> s.clock ()

(* Mutators: the critical sections only touch hashtables and never
   raise, so plain lock/unlock (no Fun.protect allocation) is safe. *)

let add t name k =
  match t with
  | Noop -> ()
  | Active s ->
      Mutex.lock s.lock;
      (match Hashtbl.find_opt s.counters name with
      | Some r -> r := !r + k
      | None -> Hashtbl.add s.counters name (ref k));
      Mutex.unlock s.lock

let incr t name = add t name 1

let set_gauge t name v =
  match t with
  | Noop -> ()
  | Active s ->
      Mutex.lock s.lock;
      (match Hashtbl.find_opt s.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.add s.gauges name (ref v));
      Mutex.unlock s.lock

let timer_add t name ns =
  match t with
  | Noop -> ()
  | Active s ->
      Mutex.lock s.lock;
      (match Hashtbl.find_opt s.timers name with
      | Some tm ->
          tm.calls <- tm.calls + 1;
          tm.total_ns <- Int64.add tm.total_ns ns
      | None -> Hashtbl.add s.timers name { calls = 1; total_ns = ns });
      Mutex.unlock s.lock

let span t name f =
  match t with
  | Noop -> f ()
  | Active s ->
      let t0 = s.clock () in
      Fun.protect
        ~finally:(fun () -> timer_add t name (Int64.sub (s.clock ()) t0))
        f

let bucket_of_ns ns =
  if Int64.compare ns 1L < 0 then 0
  else begin
    let rec go idx v =
      if Int64.compare v 1L <= 0 then idx
      else go (idx + 1) (Int64.shift_right_logical v 1)
    in
    Stdlib.min (buckets - 1) (go 1 ns)
  end

let record_latency t ns =
  match t with
  | Noop -> ()
  | Active s ->
      Mutex.lock s.lock;
      s.latency.(bucket_of_ns ns) <- s.latency.(bucket_of_ns ns) + 1;
      s.latency_count <- s.latency_count + 1;
      Mutex.unlock s.lock

(* Readers ----------------------------------------------------------- *)

let counter t name =
  match t with
  | Noop -> 0
  | Active s ->
      Mutex.lock s.lock;
      let v =
        match Hashtbl.find_opt s.counters name with Some r -> !r | None -> 0
      in
      Mutex.unlock s.lock;
      v

let gauge t name =
  match t with
  | Noop -> None
  | Active s ->
      Mutex.lock s.lock;
      let v = Option.map ( ! ) (Hashtbl.find_opt s.gauges name) in
      Mutex.unlock s.lock;
      v

let timer t name =
  match t with
  | Noop -> (0, 0L)
  | Active s ->
      Mutex.lock s.lock;
      let v =
        match Hashtbl.find_opt s.timers name with
        | Some tm -> (tm.calls, tm.total_ns)
        | None -> (0, 0L)
      in
      Mutex.unlock s.lock;
      v

let latency_count = function Noop -> 0 | Active s -> s.latency_count

let counters t =
  match t with
  | Noop -> []
  | Active s ->
      Mutex.lock s.lock;
      let kvs = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.counters [] in
      Mutex.unlock s.lock;
      List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

let gauges t =
  match t with
  | Noop -> []
  | Active s ->
      Mutex.lock s.lock;
      let kvs = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) s.gauges [] in
      Mutex.unlock s.lock;
      List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

let timers t =
  match t with
  | Noop -> []
  | Active s ->
      Mutex.lock s.lock;
      let kvs =
        Hashtbl.fold
          (fun k tm acc -> (k, (tm.calls, tm.total_ns)) :: acc)
          s.timers []
      in
      Mutex.unlock s.lock;
      List.sort (fun (a, _) (b, _) -> String.compare a b) kvs

(* JSON rendering ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Deterministic float rendering: integral values as "x.0", finite
   values via %.12g (enough digits for telemetry, stable for a given
   double), non-finite as null. *)
let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else if Float.is_finite v then Printf.sprintf "%.12g" v
  else "null"

let sorted_keys tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let render_section b ~name ~keys ~render_value =
  Buffer.add_string b (Printf.sprintf "  \"%s\": {" name);
  (match keys with
  | [] -> Buffer.add_string b "}"
  | keys ->
      Buffer.add_string b "\n";
      List.iteri
        (fun i k ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b
            (Printf.sprintf "    \"%s\": %s" (json_escape k) (render_value k)))
        keys;
      Buffer.add_string b "\n  }")

let to_json_string t =
  match t with
  | Noop ->
      "{\n  \"schema\": \"rbb.telemetry/1\",\n  \"counters\": {},\n\
      \  \"gauges\": {},\n  \"timers\": {},\n\
      \  \"round_latency_ns\": { \"count\": 0, \"buckets\": [] }\n}"
  | Active s ->
      Mutex.lock s.lock;
      let b = Buffer.create 1024 in
      Buffer.add_string b "{\n  \"schema\": \"rbb.telemetry/1\",\n";
      render_section b ~name:"counters" ~keys:(sorted_keys s.counters)
        ~render_value:(fun k ->
          string_of_int !(Hashtbl.find s.counters k));
      Buffer.add_string b ",\n";
      render_section b ~name:"gauges" ~keys:(sorted_keys s.gauges)
        ~render_value:(fun k -> json_float !(Hashtbl.find s.gauges k));
      Buffer.add_string b ",\n";
      render_section b ~name:"timers" ~keys:(sorted_keys s.timers)
        ~render_value:(fun k ->
          let tm = Hashtbl.find s.timers k in
          Printf.sprintf "{ \"calls\": %d, \"total_ns\": %Ld }" tm.calls
            tm.total_ns);
      Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf "  \"round_latency_ns\": {\n    \"count\": %d,\n\
                        \    \"buckets\": ["
           s.latency_count);
      let first = ref true in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            if not !first then Buffer.add_string b ",";
            first := false;
            let le = if i = 0 then 0L else Int64.sub (Int64.shift_left 1L i) 1L in
            Buffer.add_string b
              (Printf.sprintf "\n      { \"le\": %Ld, \"count\": %d }" le c)
          end)
        s.latency;
      if not !first then Buffer.add_string b "\n    ";
      Buffer.add_string b "]\n  }\n}";
      Mutex.unlock s.lock;
      Buffer.contents b

let write_json t ~path =
  Fileio.write_atomic ~path (fun oc ->
      output_string oc (to_json_string t);
      output_char oc '\n')

(* One-line document holding only the deterministic slice of the
   registry: counters are seed-stable and restored across a resume
   (see {!counters}), so this string is byte-identical between a
   resumed job and one that never crashed — which is what lets it be
   embedded in pinned result files. *)
let counters_json t =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
    (counters t);
  Buffer.add_string b "},\"schema\":\"rbb.telemetry-counters/1\"}";
  Buffer.contents b

(* Bridge to the core engines' instrumentation interface. *)
let probe t =
  match t with
  | Noop -> Rbb_core.Probe.noop
  | Active s ->
      {
        Rbb_core.Probe.noop with
        enabled = true;
        now = s.clock;
        add = (fun name k -> add t name k);
        timer_add = (fun name ns -> timer_add t name ns);
        latency = (fun ns -> record_latency t ns);
      }
