type t = {
  id : string;
  title : string;
  claim : string;
  run : quick:bool -> unit;
}

let make ~id ~title ~claim run = { id; title; claim; run }

let run t ~quick =
  Printf.printf "\n=== %s: %s%s ===\n" (String.uppercase_ascii t.id) t.title
    (if quick then " [quick]" else "");
  Printf.printf "claim: %s\n\n" t.claim;
  t.run ~quick;
  print_newline ()

let find ts id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun t -> String.lowercase_ascii t.id = id) ts

let run_selected ts ~ids ~quick =
  List.iter
    (fun id ->
      match find ts id with
      | Some t -> run t ~quick
      | None -> invalid_arg (Printf.sprintf "Experiment.run_selected: unknown id %S" id))
    ids

let run_all ts ~quick = List.iter (run ~quick) ts
