(** Replication across independent seeds.

    Every "w.h.p." claim is checked by running the same measurement
    under several independent generators and summarizing the cross-seed
    distribution (mean, CI, and worst seed). *)

val seeds : base:int64 -> count:int -> int64 array
(** [count] derived seeds, deterministic in [base] (SplitMix64
    mixing). *)

val run :
  ?engine:Rbb_prng.Rng.engine ->
  base_seed:int64 ->
  trials:int ->
  (Rbb_prng.Rng.t -> 'a) ->
  'a array
(** [run ~base_seed ~trials f] calls [f] with [trials] independently
    seeded generators. *)

val run_floats :
  ?engine:Rbb_prng.Rng.engine ->
  base_seed:int64 ->
  trials:int ->
  (Rbb_prng.Rng.t -> float) ->
  Rbb_stats.Summary.t
(** Same, summarized. *)

val fraction :
  ?engine:Rbb_prng.Rng.engine ->
  base_seed:int64 ->
  trials:int ->
  (Rbb_prng.Rng.t -> bool) ->
  float
(** Empirical probability of a predicate across seeds. *)
