(** Adaptive replication: run trials until the confidence interval is
    tight enough, instead of guessing a trial count.

    Sequential stopping with a Student-t CI re-checked in batches; the
    usual caveat (repeated looks inflate coverage slightly) is
    acceptable for experiment sizing. *)

type result = {
  summary : Rbb_stats.Summary.t;
  trials : int;
  converged : bool;  (** whether the precision target was met *)
}

val run_until_precision :
  ?engine:Rbb_prng.Rng.engine ->
  ?min_trials:int ->
  ?max_trials:int ->
  ?batch:int ->
  base_seed:int64 ->
  rel_precision:float ->
  (Rbb_prng.Rng.t -> float) ->
  result
(** [run_until_precision ~base_seed ~rel_precision f] runs [f] on
    independently seeded generators, in batches (default 8), starting
    after [min_trials] (default 8) and stopping once the 95% CI
    half-width is at most [rel_precision * |mean|], or at [max_trials]
    (default 1000).  The precision check folds an online (Welford)
    accumulator, so the whole procedure is O(trials) — the full summary
    is computed once, at the stopping point.
    @raise Invalid_argument on a non-positive precision or inconsistent
    bounds. *)
