let seeds ~base ~count =
  Array.init count (fun i ->
      Rbb_prng.Splitmix64.mix (Int64.add base (Int64.of_int (1 + i))))

let run ?engine ~base_seed ~trials f =
  Array.map
    (fun seed -> f (Rbb_prng.Rng.create ?engine ~seed ()))
    (seeds ~base:base_seed ~count:trials)

let run_floats ?engine ~base_seed ~trials f =
  Rbb_stats.Summary.of_array (run ?engine ~base_seed ~trials f)

let fraction ?engine ~base_seed ~trials f =
  let hits =
    Array.fold_left
      (fun acc b -> if b then acc + 1 else acc)
      0
      (run ?engine ~base_seed ~trials f)
  in
  float_of_int hits /. float_of_int trials
