(* Reader/analyzer for rbb.trace/1 NDJSON streams: folds a recorded
   trace back into summary statistics and a terminal rendering.  The
   max-load series is accumulated through the core Trace ring buffer, so
   reporting on a 10^7-round trace stays within a fixed memory budget. *)

type t = {
  header : (string * Jsonl.value) list option;
  n : int option;
  m : int option;  (* header ball count; absent on m = n traces *)
  threshold : int option;
  every : int option;
  observables : int;
  first_round : int option;
  last_round : int option;
  peak_max_load : int option;
  min_empty_fraction : float option;
  min_balls : int option;
  max_balls : int option;
  legit_observed : int;
  enters : int;
  exits : int;
  longest_excursion : int option;
  convergence : (int option * int) list;  (* (trial, round), file order *)
  quarter_violations : int;
  spans : (string * int) list;  (* name -> count, sorted by name *)
  skipped : int;
  truncated_tail : bool;
  series : Rbb_core.Trace.t;
}

type state = {
  mutable s_header : (string * Jsonl.value) list option;
  mutable s_n : int option;
  mutable s_m : int option;
  mutable s_threshold : int option;
  mutable s_every : int option;
  mutable s_observables : int;
  mutable s_first_round : int option;
  mutable s_last_round : int option;
  mutable s_peak : int option;
  mutable s_current : int option;  (* max load of the newest observable *)
  mutable s_min_empty_frac : float option;
  mutable s_min_balls : int option;
  mutable s_max_balls : int option;
  mutable s_legit_observed : int;
  mutable s_enters : int;
  mutable s_exits : int;
  mutable s_last_exit : int option;
  mutable s_longest_excursion : int option;
  mutable s_convergence : (int option * int) list;  (* reversed *)
  mutable s_quarter : int;
  s_spans : (string, int) Hashtbl.t;
  mutable s_skipped : int;
  mutable s_truncated_tail : bool;
  s_series : Rbb_core.Trace.t;
}

let fresh_state () =
  {
    s_header = None;
    s_n = None;
    s_m = None;
    s_threshold = None;
    s_every = None;
    s_observables = 0;
    s_first_round = None;
    s_last_round = None;
    s_peak = None;
    s_current = None;
    s_min_empty_frac = None;
    s_min_balls = None;
    s_max_balls = None;
    s_legit_observed = 0;
    s_enters = 0;
    s_exits = 0;
    s_last_exit = None;
    s_longest_excursion = None;
    s_convergence = [];
    s_quarter = 0;
    s_spans = Hashtbl.create 16;
    s_skipped = 0;
    s_truncated_tail = false;
    s_series = Rbb_core.Trace.create ();
  }

let opt_min o v = match o with None -> Some v | Some w -> Some (min w v)
let opt_max o v = match o with None -> Some v | Some w -> Some (max w v)

let feed st line =
  let skip () = st.s_skipped <- st.s_skipped + 1 in
  if String.trim line = "" then ()
  else
    match Jsonl.parse line with
    | None -> skip ()
    | Some fields -> (
        match Jsonl.find_string fields "type" with
        | Some "header" ->
            st.s_header <- Some fields;
            st.s_n <- Jsonl.find_int fields "n";
            st.s_m <- Jsonl.find_int fields "m";
            st.s_threshold <- Jsonl.find_int fields "threshold";
            st.s_every <- Jsonl.find_int fields "every"
        | Some "observable" -> (
            match
              ( Jsonl.find_int fields "round",
                Jsonl.find_int fields "max_load",
                Jsonl.find_int fields "empty_bins" )
            with
            | Some round, Some max_load, Some empty_bins ->
                st.s_observables <- st.s_observables + 1;
                if st.s_first_round = None then st.s_first_round <- Some round;
                st.s_last_round <- Some round;
                st.s_peak <- opt_max st.s_peak max_load;
                st.s_current <- Some max_load;
                (match st.s_n with
                | Some n when n > 0 ->
                    st.s_min_empty_frac <-
                      opt_min st.s_min_empty_frac
                        (float_of_int empty_bins /. float_of_int n)
                | _ -> ());
                (match Jsonl.find_int fields "balls" with
                | Some b ->
                    st.s_min_balls <- opt_min st.s_min_balls b;
                    st.s_max_balls <- opt_max st.s_max_balls b
                | None -> ());
                (match st.s_threshold with
                | Some thr when max_load <= thr ->
                    st.s_legit_observed <- st.s_legit_observed + 1
                | _ -> ());
                Rbb_core.Trace.record st.s_series ~round ~max_load ~empty_bins
            | _ -> skip ())
        | Some "legitimacy_enter" -> (
            match Jsonl.find_int fields "round" with
            | Some round ->
                st.s_enters <- st.s_enters + 1;
                (match st.s_last_exit with
                | Some exit_round ->
                    st.s_last_exit <- None;
                    st.s_longest_excursion <-
                      opt_max st.s_longest_excursion (round - exit_round)
                | None -> ())
            | None -> skip ())
        | Some "legitimacy_exit" -> (
            match Jsonl.find_int fields "round" with
            | Some round ->
                st.s_exits <- st.s_exits + 1;
                st.s_last_exit <- Some round
            | None -> skip ())
        | Some "convergence" -> (
            match Jsonl.find_int fields "round" with
            | Some round ->
                st.s_convergence <-
                  (Jsonl.find_int fields "trial", round) :: st.s_convergence
            | None -> skip ())
        | Some "quarter_violation" -> st.s_quarter <- st.s_quarter + 1
        | Some "span" -> (
            match Jsonl.find_string fields "name" with
            | Some name ->
                Hashtbl.replace st.s_spans name
                  (1 + Option.value ~default:0 (Hashtbl.find_opt st.s_spans name))
            | None -> skip ())
        | Some _ | None -> skip ())

let finish st =
  {
    header = st.s_header;
    n = st.s_n;
    m = st.s_m;
    threshold = st.s_threshold;
    every = st.s_every;
    observables = st.s_observables;
    first_round = st.s_first_round;
    last_round = st.s_last_round;
    peak_max_load = st.s_peak;
    min_empty_fraction = st.s_min_empty_frac;
    min_balls = st.s_min_balls;
    max_balls = st.s_max_balls;
    legit_observed = st.s_legit_observed;
    enters = st.s_enters;
    exits = st.s_exits;
    longest_excursion = st.s_longest_excursion;
    convergence = List.rev st.s_convergence;
    quarter_violations = st.s_quarter;
    truncated_tail = st.s_truncated_tail;
    spans =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.s_spans []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    skipped = st.s_skipped;
    series = st.s_series;
  }

let of_lines lines =
  let st = fresh_state () in
  List.iter (feed st) lines;
  finish st

(* Hand-rolled line splitting instead of [input_line]: we must know
   whether the final line carried its newline terminator.  A process
   killed mid-write leaves a torn, unterminated tail; such a line is
   tolerated with a warning flag rather than folded into the ordinary
   skipped count — the distinction matters because a torn tail means
   "the producer died", not "the producer wrote garbage". *)
let read_channel ic =
  let st = fresh_state () in
  let buf = Buffer.create 256 in
  (try
     while true do
       match input_char ic with
       | '\n' ->
           feed st (Buffer.contents buf);
           Buffer.clear buf
       | c -> Buffer.add_char buf c
     done
   with End_of_file -> ());
  if Buffer.length buf > 0 then begin
    let line = Buffer.contents buf in
    if String.trim line <> "" && Jsonl.parse line = None then
      st.s_truncated_tail <- true
    else feed st line
  end;
  finish st

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read_channel ic)

(* Live tailing: fold the stream via Jsonl's tail until the producer
   goes quiet, then treat whatever unterminated bytes remain exactly as
   read_channel treats a torn final line.  This is what lets
   `rbb trace-report --follow` watch a simulation that is still
   writing.  [live] (when given) observes the summary-so-far after each
   poll that delivered lines — the hook behind the one-line progress
   reports `--follow` prints while it pairs with `rbb top`. *)

type live = {
  live_rounds : int;
  live_last_round : int option;
  live_max_load : int option;
  live_legitimate : bool option;
}

let live_of st =
  {
    live_rounds = st.s_observables;
    live_last_round = st.s_last_round;
    live_max_load = st.s_current;
    live_legitimate =
      (match (st.s_threshold, st.s_current) with
      | Some thr, Some ml -> Some (ml <= thr)
      | _ -> None);
  }

(* The pinnable live-line format; the rate is the only wall-clock part
   and cram tests normalise it away. *)
let live_line ?rate l =
  Printf.sprintf "live: round=%s max_load=%s legitimate=%s%s"
    (match l.live_last_round with Some r -> string_of_int r | None -> "?")
    (match l.live_max_load with Some m -> string_of_int m | None -> "?")
    (match l.live_legitimate with
    | Some true -> "yes"
    | Some false -> "no"
    | None -> "-")
    (match rate with
    | Some r -> Printf.sprintf " (%.1f rounds/s)" r
    | None -> "")

let follow_file ?(poll_interval_s = 0.05) ?(idle_polls = 3) ?live path =
  if poll_interval_s < 0. then
    invalid_arg "Trace_report.follow_file: poll_interval_s must be >= 0";
  if idle_polls < 1 then
    invalid_arg "Trace_report.follow_file: idle_polls must be >= 1";
  let st = fresh_state () in
  let tl = Jsonl.tail path in
  let idle = ref 0 in
  while !idle < idle_polls do
    (match Jsonl.tail_poll tl with
    | [] -> Stdlib.incr idle
    | lines ->
        idle := 0;
        List.iter (feed st) lines;
        match live with Some f -> f (live_of st) | None -> ());
    if !idle < idle_polls then Unix.sleepf poll_interval_s
  done;
  (match Jsonl.tail_pending tl with
  | Some line when String.trim line <> "" ->
      if Jsonl.parse line = None then st.s_truncated_tail <- true
      else feed st line
  | Some _ | None -> ());
  finish st

(* Deterministic rendering for a deterministic trace: everything shown
   is derived from record contents, never wall-clock durations, so cram
   tests can pin the full output of a seeded run. *)

let opt_str f = function None -> "?" | Some v -> f v
let int_opt = opt_str string_of_int

let render ?(plot = true) r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "trace report (%s)"
    (match r.header with
    | Some h -> Option.value ~default:"no schema" (Jsonl.find_string h "schema")
    | None -> "no header");
  (* m is shown only when the header carried one (m ≠ n traces), so
     m = n reports keep their historical bytes. *)
  line "  n=%s%s  threshold=%s  every=%s" (int_opt r.n)
    (match r.m with Some m -> Printf.sprintf "  m=%d" m | None -> "")
    (int_opt r.threshold) (int_opt r.every);
  (match (r.first_round, r.last_round) with
  | Some f, Some l -> line "  observable rounds : %d (rounds %d..%d)" r.observables f l
  | _ -> line "  observable rounds : %d" r.observables);
  line "  peak max load     : %s" (int_opt r.peak_max_load);
  line "  min empty fraction: %s"
    (opt_str Jsonl.float_repr r.min_empty_fraction);
  (match (r.min_balls, r.max_balls) with
  | Some lo, Some hi when lo = hi -> line "  balls             : %d (constant)" lo
  | Some lo, Some hi -> line "  balls             : %d..%d" lo hi
  | _ -> ());
  (match r.threshold with
  | Some _ ->
      line "  legitimacy        : %d/%d observed rounds legitimate"
        r.legit_observed r.observables
  | None -> ());
  line "  enters/exits      : %d/%d%s" r.enters r.exits
    (match r.longest_excursion with
    | Some e -> Printf.sprintf " (longest excursion %d rounds)" e
    | None -> "");
  (match r.convergence with
  | [] -> line "  convergence       : none recorded"
  | cs ->
      line "  convergence       : %s"
        (String.concat ", "
           (List.map
              (fun (trial, round) ->
                match trial with
                | None -> Printf.sprintf "round %d" round
                | Some k -> Printf.sprintf "trial %d: round %d" k round)
              cs)));
  line "  quarter violations: %d" r.quarter_violations;
  (match r.spans with
  | [] -> ()
  | spans ->
      line "  spans             : %s"
        (String.concat " "
           (List.map (fun (name, count) -> Printf.sprintf "%s=%d" name count) spans)));
  if r.skipped > 0 then line "  skipped lines     : %d" r.skipped;
  if r.truncated_tail then
    line "  warning: truncated final line (interrupted write?), ignored";
  (if plot then
     let series = Rbb_core.Trace.max_load_series r.series in
     if Array.length series >= 2 then begin
       line "  max load over time:";
       Buffer.add_string b
         (Plot.line_plot ~rows:10 ~cols:60 ~y_label:"max load" series);
       if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '\n' then
         Buffer.add_char b '\n';
       line "  sparkline: %s" (Plot.sparkline series)
     end);
  Buffer.contents b
