(* Atomic file publication: every writer streams into "path.tmp" and the
   final rename is the only point at which "path" appears, so a crash
   mid-write can never leave a truncated artifact behind under the
   published name. *)

type writer = {
  oc : out_channel;
  tmp : string;
  path : string;
  mutable open_ : bool;
}

let tmp_path path = path ^ ".tmp"

let open_atomic ~path =
  { oc = open_out (tmp_path path); tmp = tmp_path path; path; open_ = true }

let channel w = w.oc

let commit w =
  if w.open_ then begin
    w.open_ <- false;
    close_out w.oc;
    Sys.rename w.tmp w.path
  end

let abort w =
  if w.open_ then begin
    w.open_ <- false;
    close_out w.oc;
    try Sys.remove w.tmp with Sys_error _ -> ()
  end

let write_atomic ~path f =
  let w = open_atomic ~path in
  match f (channel w) with
  | () -> commit w
  | exception e ->
      abort w;
      raise e
