(* Atomic file publication: every writer streams into a per-process
   unique temp file next to the target and the final rename is the only
   point at which "path" appears, so a crash mid-write can never leave a
   truncated artifact behind under the published name.  The temp file is
   fsynced before the rename: without it a power loss shortly after
   commit can publish a name whose blocks never hit the disk, which is
   exactly the window a crash-safe checkpoint must not have. *)

type writer = {
  oc : out_channel;
  tmp : string;
  path : string;
  mutable open_ : bool;
}

(* Suffix the temp name with the pid so two processes (a run and its
   resumed successor, or parallel bench invocations) targeting the same
   path never clobber each other's in-flight temp file.  A per-process
   counter additionally separates concurrent writers within one
   process. *)
let tmp_counter = Atomic.make 0

let tmp_path path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

let open_atomic ~path =
  let tmp = tmp_path path in
  match open_out tmp with
  | oc -> { oc; tmp; path; open_ = true }
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let channel w = w.oc

let fsync_out oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with
  | Unix.Unix_error ((EINVAL | EOPNOTSUPP | ENOSYS), _, _) -> ()
  (* e.g. /dev/null or pipes: nothing durable to sync *)

let commit w =
  if w.open_ then begin
    w.open_ <- false;
    match
      fsync_out w.oc;
      close_out w.oc
    with
    | () -> Sys.rename w.tmp w.path
    | exception e ->
        (try close_out_noerr w.oc with _ -> ());
        (try Sys.remove w.tmp with Sys_error _ -> ());
        raise e
  end

let abort w =
  if w.open_ then begin
    w.open_ <- false;
    close_out_noerr w.oc;
    try Sys.remove w.tmp with Sys_error _ -> ()
  end

(* Exclusive pid lock files.  O_CREAT|O_EXCL is the atomicity primitive:
   exactly one process can create the file, and it writes its pid into
   it so a later contender can tell a live owner from a stale corpse.
   A lock whose pid no longer exists (the owner was SIGKILLed and could
   not clean up) is broken and re-taken; the remove-then-recreate window
   is itself closed by O_EXCL — when two takers race, exactly one
   creation succeeds and the loser reports the new owner. *)

type lock = { lock_path : string; lock_fd : Unix.file_descr }

let process_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (ESRCH, _, _) -> false
  (* EPERM means "exists but not ours": alive. *)
  | exception Unix.Unix_error (EPERM, _, _) -> true

let read_lock_pid path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | line -> int_of_string_opt (String.trim line)
          | exception End_of_file -> None)

let acquire_lock ~path =
  let rec attempt retries =
    match
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
    with
    | fd ->
        let line = string_of_int (Unix.getpid ()) ^ "\n" in
        let n = Unix.write_substring fd line 0 (String.length line) in
        if n <> String.length line then begin
          (try Unix.close fd with Unix.Unix_error _ -> ());
          (try Sys.remove path with Sys_error _ -> ());
          Error (Printf.sprintf "lock %s: short write" path)
        end
        else Ok { lock_path = path; lock_fd = fd }
    | exception Unix.Unix_error (EEXIST, _, _) -> (
        match read_lock_pid path with
        | Some pid when pid > 0 && process_alive pid ->
            Error
              (Printf.sprintf "lock %s: held by running process %d" path pid)
        | _ when retries = 0 ->
            Error (Printf.sprintf "lock %s: stale but cannot be reclaimed" path)
        | _ ->
            (* Stale (dead pid) or unreadable: break it and race for the
               recreation; O_EXCL arbitrates the race. *)
            (try Sys.remove path with Sys_error _ -> ());
            attempt (retries - 1))
    | exception Unix.Unix_error (e, _, _) ->
        Error (Printf.sprintf "lock %s: %s" path (Unix.error_message e))
  in
  attempt 3

let release_lock l =
  (try Unix.close l.lock_fd with Unix.Unix_error _ -> ());
  try Sys.remove l.lock_path with Sys_error _ -> ()

let write_atomic ~path f =
  let w = open_atomic ~path in
  match f (channel w) with
  | () -> commit w
  | exception e ->
      abort w;
      raise e
