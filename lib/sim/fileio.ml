(* Atomic file publication: every writer streams into a per-process
   unique temp file next to the target and the final rename is the only
   point at which "path" appears, so a crash mid-write can never leave a
   truncated artifact behind under the published name.  The temp file is
   fsynced before the rename: without it a power loss shortly after
   commit can publish a name whose blocks never hit the disk, which is
   exactly the window a crash-safe checkpoint must not have. *)

type writer = {
  oc : out_channel;
  tmp : string;
  path : string;
  mutable open_ : bool;
}

(* Suffix the temp name with the pid so two processes (a run and its
   resumed successor, or parallel bench invocations) targeting the same
   path never clobber each other's in-flight temp file.  A per-process
   counter additionally separates concurrent writers within one
   process. *)
let tmp_counter = Atomic.make 0

let tmp_path path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

let open_atomic ~path =
  let tmp = tmp_path path in
  match open_out tmp with
  | oc -> { oc; tmp; path; open_ = true }
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let channel w = w.oc

let fsync_out oc =
  flush oc;
  try Unix.fsync (Unix.descr_of_out_channel oc) with
  | Unix.Unix_error ((EINVAL | EOPNOTSUPP | ENOSYS), _, _) -> ()
  (* e.g. /dev/null or pipes: nothing durable to sync *)

let commit w =
  if w.open_ then begin
    w.open_ <- false;
    match
      fsync_out w.oc;
      close_out w.oc
    with
    | () -> Sys.rename w.tmp w.path
    | exception e ->
        (try close_out_noerr w.oc with _ -> ());
        (try Sys.remove w.tmp with Sys_error _ -> ());
        raise e
  end

let abort w =
  if w.open_ then begin
    w.open_ <- false;
    close_out_noerr w.oc;
    try Sys.remove w.tmp with Sys_error _ -> ()
  end

let write_atomic ~path f =
  let w = open_atomic ~path in
  match f (channel w) with
  | () -> commit w
  | exception e ->
      abort w;
      raise e
