(* Atomic file publication: every writer streams into a per-process
   unique temp file next to the target and the final rename is the only
   point at which "path" appears, so a crash mid-write can never leave a
   truncated artifact behind under the published name.  The temp file is
   fsynced before the rename: without it a power loss shortly after
   commit can publish a name whose blocks never hit the disk, which is
   exactly the window a crash-safe checkpoint must not have.

   The write/fsync/rename/lock syscalls run behind a faultable shim: a
   process-global failpoint set (io.write, io.fsync, io.rename, io.lock)
   can make any of them fail deterministically, so the never-a-torn-file
   contract is provable under injected faults, not just asserted.  The
   shim coordinates map the failpoint "round" to the 0-based index of
   the faultable operation since the set was armed (shard = attempt = 0),
   so "io.fsync@round=4" is "the fifth fsync from now" and
   "io.fsync@p=0.01,seed=9" is a reproducible per-operation coin. *)

type writer = {
  oc : out_channel;
  tmp : string;
  path : string;
  mutable open_ : bool;
}

(* ---- faultable syscall shim ------------------------------------- *)

let failpoints = Atomic.make Failpoint.noop
let fault_count = Atomic.make 0
let write_ops = Atomic.make 0
let fsync_ops = Atomic.make 0
let rename_ops = Atomic.make 0
let lock_ops = Atomic.make 0

let set_failpoints fp =
  (* Re-arming resets the operation indices, so deterministic specs
     address "the k-th operation from now" regardless of history. *)
  Atomic.set write_ops 0;
  Atomic.set fsync_ops 0;
  Atomic.set rename_ops 0;
  Atomic.set lock_ops 0;
  Atomic.set failpoints fp

let injected_faults () = Atomic.get fault_count

(* Returns [Some op] when the named point fires for this operation.
   Disabled sets skip the counters entirely: the unfaulted hot path
   costs one atomic load and a pattern match. *)
let io_check counter ~name =
  let fp = Atomic.get failpoints in
  if not (Failpoint.enabled fp) then None
  else
    let op = Atomic.fetch_and_add counter 1 in
    if Failpoint.fires fp ~name ~round:op ~shard:0 ~attempt:0 then begin
      Atomic.incr fault_count;
      Some op
    end
    else None

let io_trip counter ~name =
  match io_check counter ~name with
  | None -> ()
  | Some op -> raise (Failpoint.Injected { name; round = op; shard = 0; attempt = 0 })

(* ---- atomic writers --------------------------------------------- *)

(* Suffix the temp name with the pid so two processes (a run and its
   resumed successor, or parallel bench invocations) targeting the same
   path never clobber each other's in-flight temp file.  A per-process
   counter additionally separates concurrent writers within one
   process. *)
let tmp_counter = Atomic.make 0

let tmp_path path =
  Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_counter 1)

let open_atomic ~path =
  let tmp = tmp_path path in
  match open_out tmp with
  | oc -> { oc; tmp; path; open_ = true }
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let channel w = w.oc

let fsync_out oc =
  flush oc;
  io_trip fsync_ops ~name:"io.fsync";
  try Unix.fsync (Unix.descr_of_out_channel oc) with
  | Unix.Unix_error ((EINVAL | EOPNOTSUPP | ENOSYS), _, _) -> ()
  (* e.g. /dev/null or pipes: nothing durable to sync *)

(* An injected io.write is a short write: flush what is buffered, chop
   the temp file to half its length, and fail.  The temp really is torn
   on disk — the point is that the published path never sees it. *)
let write_trip w =
  match io_check write_ops ~name:"io.write" with
  | None -> ()
  | Some op ->
      flush w.oc;
      let fd = Unix.descr_of_out_channel w.oc in
      let len = (Unix.fstat fd).st_size in
      (try Unix.ftruncate fd (len / 2) with Unix.Unix_error _ -> ());
      raise (Failpoint.Injected { name = "io.write"; round = op; shard = 0; attempt = 0 })

let commit w =
  if w.open_ then begin
    w.open_ <- false;
    match
      write_trip w;
      fsync_out w.oc;
      close_out w.oc;
      io_trip rename_ops ~name:"io.rename";
      Sys.rename w.tmp w.path
    with
    | () -> ()
    | exception e ->
        (try close_out_noerr w.oc with _ -> ());
        (try Sys.remove w.tmp with Sys_error _ -> ());
        raise e
  end

let abort w =
  if w.open_ then begin
    w.open_ <- false;
    close_out_noerr w.oc;
    try Sys.remove w.tmp with Sys_error _ -> ()
  end

(* ---- exclusive locks -------------------------------------------- *)

(* Exclusive pid:token lock files.  O_CREAT|O_EXCL is the atomicity
   primitive: exactly one process can create the file, and it writes
   "pid:token" into it (token = random 64-bit hex) so a later contender
   can tell a live owner from a stale corpse.  A dead pid is always
   stale.  A live pid alone is NOT proof of ownership — pids recycle,
   and under the old bare-pid format a recycled pid made a stale lock
   look held forever — so ownership additionally requires a fresh
   heartbeat: the owner periodically rewrites "<path>.hb" containing its
   token ({!refresh_lock}), and a contender finding a live pid breaks
   the lock anyway when the heartbeat file is missing, carries a
   different token, or has not been touched within the staleness
   window.  Old bare-pid lock files (no token) keep the conservative
   pre-token behavior: live pid means held.  The remove-then-recreate
   window is itself closed by O_EXCL — when two takers race, exactly
   one creation succeeds and the loser reports the new owner. *)

type lock = { lock_path : string; lock_fd : Unix.file_descr; lock_token : string }

let process_alive pid =
  match Unix.kill pid 0 with
  | () -> true
  | exception Unix.Unix_error (ESRCH, _, _) -> false
  (* EPERM means "exists but not ours": alive. *)
  | exception Unix.Unix_error (EPERM, _, _) -> true

let hb_path path = path ^ ".hb"

(* Uniqueness, not secrecy: mix wall clock, pid and a counter through
   SplitMix64 so two lock incarnations never share a token. *)
let random_token () =
  let mix = Rbb_prng.Splitmix64.mix in
  let h = mix (Int64.bits_of_float (Unix.gettimeofday ())) in
  let h = mix (Int64.logxor h (Int64.of_int (Unix.getpid ()))) in
  let h = mix (Int64.logxor h (Int64.of_int (Atomic.fetch_and_add tmp_counter 1))) in
  Printf.sprintf "%016Lx" h

(* "pid:token" (current format) or a bare "pid" (pre-token files). *)
let read_lock_owner path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> None
          | line -> (
              let line = String.trim line in
              match String.index_opt line ':' with
              | None ->
                  Option.map (fun pid -> (pid, None)) (int_of_string_opt line)
              | Some i ->
                  let tok =
                    String.sub line (i + 1) (String.length line - i - 1)
                  in
                  Option.map
                    (fun pid -> (pid, Some tok))
                    (int_of_string_opt (String.sub line 0 i))))

let write_heartbeat ~path ~token =
  (* Plain (non-atomic, non-faultable) write on purpose: a torn
     heartbeat only makes the lock breakable after its owner stops
     refreshing, which is the safe direction, and the refresh must not
     become an injected-fault crash vector inside the daemon loop. *)
  try
    let oc = open_out (hb_path path) in
    output_string oc (token ^ "\n");
    close_out oc
  with Sys_error _ -> ()

let refresh_lock l = write_heartbeat ~path:l.lock_path ~token:l.lock_token

let heartbeat_fresh ~path ~token ~stale_s =
  let hb = hb_path path in
  match open_in hb with
  | exception Sys_error _ -> false
  | ic ->
      let tok =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> match input_line ic with
            | line -> String.trim line
            | exception End_of_file -> "")
      in
      String.equal tok token
      &&
      (match Unix.stat hb with
      | st -> Unix.gettimeofday () -. st.Unix.st_mtime <= stale_s
      | exception Unix.Unix_error _ -> false)

let acquire_lock ?(heartbeat_stale_s = 30.) ~path () =
  match io_check lock_ops ~name:"io.lock" with
  | Some op -> Error (Printf.sprintf "lock %s: injected fault (io.lock, op %d)" path op)
  | None ->
      let rec attempt retries =
        match
          Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644
        with
        | fd ->
            let token = random_token () in
            let line = Printf.sprintf "%d:%s\n" (Unix.getpid ()) token in
            let n = Unix.write_substring fd line 0 (String.length line) in
            if n <> String.length line then begin
              (try Unix.close fd with Unix.Unix_error _ -> ());
              (try Sys.remove path with Sys_error _ -> ());
              Error (Printf.sprintf "lock %s: short write" path)
            end
            else begin
              write_heartbeat ~path ~token;
              Ok { lock_path = path; lock_fd = fd; lock_token = token }
            end
        | exception Unix.Unix_error (EEXIST, _, _) -> (
            match read_lock_owner path with
            | Some (pid, None) when pid > 0 && process_alive pid ->
                (* Pre-token file: no heartbeat to consult, so a live
                   pid must be presumed the owner. *)
                Error
                  (Printf.sprintf "lock %s: held by running process %d" path pid)
            | Some (pid, Some token)
              when pid > 0 && process_alive pid
                   && heartbeat_fresh ~path ~token ~stale_s:heartbeat_stale_s ->
                Error
                  (Printf.sprintf "lock %s: held by running process %d" path pid)
            | _ when retries = 0 ->
                Error (Printf.sprintf "lock %s: stale but cannot be reclaimed" path)
            | _ ->
                (* Stale: dead pid, unreadable file, or a live pid that
                   never heartbeats this token (pid reuse).  Break it and
                   race for the recreation; O_EXCL arbitrates the race. *)
                (try Sys.remove (hb_path path) with Sys_error _ -> ());
                (try Sys.remove path with Sys_error _ -> ());
                attempt (retries - 1))
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "lock %s: %s" path (Unix.error_message e))
      in
      attempt 3

let release_lock l =
  (try Unix.close l.lock_fd with Unix.Unix_error _ -> ());
  (try Sys.remove (hb_path l.lock_path) with Sys_error _ -> ());
  try Sys.remove l.lock_path with Sys_error _ -> ()

let write_atomic ~path f =
  let w = open_atomic ~path in
  match f (channel w) with
  | () -> commit w
  | exception e ->
      abort w;
      raise e
