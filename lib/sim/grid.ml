type 'a axis = { name : string; values : (string * 'a) list }

let axis ~name values =
  if values = [] then invalid_arg "Grid.axis: empty axis";
  { name; values }

let int_axis ~name values =
  axis ~name (List.map (fun v -> (string_of_int v, v)) values)

let float_axis ?(fmt = fun v -> Printf.sprintf "%g" v) ~name values =
  axis ~name (List.map (fun v -> (fmt v, v)) values)

let label axis_name value_label = Printf.sprintf "%s=%s" axis_name value_label

let pairs a b =
  List.concat_map
    (fun (la, va) ->
      List.map
        (fun (lb, vb) ->
          (label a.name la ^ " " ^ label b.name lb, (va, vb)))
        b.values)
    a.values

let triples a b c =
  List.concat_map
    (fun (la, va) ->
      List.concat_map
        (fun (lb, vb) ->
          List.map
            (fun (lc, vc) ->
              ( label a.name la ^ " " ^ label b.name lb ^ " " ^ label c.name lc,
                (va, vb, vc) ))
            c.values)
        b.values)
    a.values

let size2 a b = List.length a.values * List.length b.values
let size3 a b c = size2 a b * List.length c.values
