(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven,
   one byte per step.  The running state carries the conventional
   pre/post-XOR with 0xFFFFFFFF internally, so [start] is all-ones and
   [digest] applies the final complement. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

type t = int32

let start = 0xFFFFFFFFl

let feed_char crc c =
  let table = Lazy.force table in
  let i = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int (Char.code c))) 0xFFl) in
  Int32.logxor (Int32.shift_right_logical crc 8) table.(i)

let feed crc s =
  let table = Lazy.force table in
  let crc = ref crc in
  String.iter
    (fun c ->
      let i =
        Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code c))) 0xFFl)
      in
      crc := Int32.logxor (Int32.shift_right_logical !crc 8) table.(i))
    s;
  !crc

let digest crc = Int32.logxor crc 0xFFFFFFFFl
let to_hex crc = Printf.sprintf "%08lx" (digest crc)
let string s = digest (feed start s)

let equal_hex crc hex =
  String.equal (to_hex crc) (String.lowercase_ascii hex)
