type fit = { slope : float; intercept : float; r2 : float }

let linear points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least 2 points";
  let fn = float_of_int n in
  let sx = ref 0. and sy = ref 0. in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y)
    points;
  let mx = !sx /. fn and my = !sy /. fn in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  Array.iter
    (fun (x, y) ->
      let dx = x -. mx and dy = y -. my in
      sxx := !sxx +. (dx *. dx);
      sxy := !sxy +. (dx *. dy);
      syy := !syy +. (dy *. dy))
    points;
  if !sxx = 0. then invalid_arg "Regression.linear: all x equal";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if !syy = 0. then 1. (* a constant y is fit perfectly *)
    else !sxy *. !sxy /. (!sxx *. !syy)
  in
  { slope; intercept; r2 }

let against ~transform points =
  linear (Array.map (fun (x, y) -> (transform x, y)) points)

let log_log_exponent points =
  Array.iter
    (fun (x, y) ->
      if x <= 0. || y <= 0. then
        invalid_arg "Regression.log_log_exponent: non-positive coordinate")
    points;
  linear (Array.map (fun (x, y) -> (Float.log x, Float.log y)) points)

let pp_fit ppf f =
  Format.fprintf ppf "slope=%.4g intercept=%.4g R2=%.4f" f.slope f.intercept f.r2
