let mean_of xs =
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let autocovariance xs mu k =
  let n = Array.length xs in
  let acc = ref 0. in
  for t = 0 to n - 1 - k do
    acc := !acc +. ((xs.(t) -. mu) *. (xs.(t + k) -. mu))
  done;
  !acc /. float_of_int n

let autocorrelation xs k =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Autocorr.autocorrelation: empty series";
  if k < 0 || k >= n then invalid_arg "Autocorr.autocorrelation: bad lag";
  if k = 0 then 1.
  else begin
    let mu = mean_of xs in
    let c0 = autocovariance xs mu 0 in
    if c0 = 0. then 0. else autocovariance xs mu k /. c0
  end

let autocorrelation_function xs ~max_lag =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Autocorr.autocorrelation_function: empty series";
  if max_lag < 0 || max_lag >= n then
    invalid_arg "Autocorr.autocorrelation_function: bad max_lag";
  let mu = mean_of xs in
  let c0 = autocovariance xs mu 0 in
  Array.init (max_lag + 1) (fun k ->
      if k = 0 then 1.
      else if c0 = 0. then 0.
      else autocovariance xs mu k /. c0)

let integrated_time ?max_lag xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Autocorr.integrated_time: empty series";
  let max_lag =
    match max_lag with Some l -> Stdlib.min l (n - 1) | None -> Stdlib.max 1 (n / 4)
  in
  let acf = autocorrelation_function xs ~max_lag in
  (* Geyer initial positive sequence: sum pair-blocks rho(2j-1)+rho(2j)
     while the block sum stays positive. *)
  let acc = ref 0. in
  let j = ref 1 in
  let stop = ref false in
  while (not !stop) && (2 * !j) <= max_lag do
    let block = acf.((2 * !j) - 1) +. acf.(2 * !j) in
    if block > 0. then begin
      acc := !acc +. block;
      incr j
    end
    else stop := true
  done;
  Stdlib.max 1. (1. +. (2. *. !acc))

let effective_sample_size ?max_lag xs =
  float_of_int (Array.length xs) /. integrated_time ?max_lag xs
