let statistic ~observed ~expected =
  let k = Array.length observed in
  if Array.length expected <> k then
    invalid_arg "Chi2.statistic: length mismatch";
  let acc = ref 0. in
  for i = 0 to k - 1 do
    let e = expected.(i) and o = float_of_int observed.(i) in
    if e < 0. then invalid_arg "Chi2.statistic: negative expectation";
    if e = 0. then begin
      if observed.(i) <> 0 then
        invalid_arg "Chi2.statistic: observation in a zero-expectation cell"
    end
    else acc := !acc +. (((o -. e) ** 2.) /. e)
  done;
  !acc

(* Standard normal CDF via erf-like rational approximation
   (Abramowitz & Stegun 7.1.26 applied to the normal). *)
let normal_cdf x =
  let t = 1. /. (1. +. (0.2316419 *. Float.abs x)) in
  let poly =
    t
    *. (0.319381530
       +. (t *. (-0.356563782 +. (t *. (1.781477937 +. (t *. (-1.821255978 +. (t *. 1.330274429))))))))
  in
  let phi = 1. -. (Float.exp (-.(x *. x) /. 2.) /. Float.sqrt (2. *. Float.pi) *. poly) in
  if x >= 0. then phi else 1. -. phi

let cdf ~df x =
  if df <= 0 then invalid_arg "Chi2.cdf: df <= 0";
  if x <= 0. then 0.
  else begin
    (* Wilson-Hilferty: (X/df)^(1/3) ~ N(1 - 2/(9 df), 2/(9 df)). *)
    let fdf = float_of_int df in
    let v = 2. /. (9. *. fdf) in
    let z = (((x /. fdf) ** (1. /. 3.)) -. (1. -. v)) /. Float.sqrt v in
    normal_cdf z
  end

let p_value ~df x = 1. -. cdf ~df x

let goodness_of_fit ~observed ~probabilities =
  let k = Array.length observed in
  if Array.length probabilities <> k then
    invalid_arg "Chi2.goodness_of_fit: length mismatch";
  let total = float_of_int (Array.fold_left ( + ) 0 observed) in
  let expected = Array.map (fun p -> p *. total) probabilities in
  let stat = statistic ~observed ~expected in
  p_value ~df:(Stdlib.max 1 (k - 1)) stat
