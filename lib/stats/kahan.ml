type t = { mutable sum : float; mutable comp : float; mutable count : int }

let create () = { sum = 0.; comp = 0.; count = 0 }

let add t x =
  (* Neumaier's variant: also correct when |x| > |sum|. *)
  let s = t.sum +. x in
  if Float.abs t.sum >= Float.abs x then
    t.comp <- t.comp +. ((t.sum -. s) +. x)
  else t.comp <- t.comp +. ((x -. s) +. t.sum);
  t.sum <- s;
  t.count <- t.count + 1

let sum t = t.sum +. t.comp
let count t = t.count
let mean t = if t.count = 0 then 0. else sum t /. float_of_int t.count

let sum_array a =
  let t = create () in
  Array.iter (add t) a;
  sum t
