(** Kahan–Babuška compensated summation.

    Long simulations accumulate millions of small float contributions
    (per-round fractions, per-ball progress); naive summation loses
    precision linearly in the number of terms, compensated summation
    keeps the error O(1) ulps. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** A fresh accumulator holding 0. *)

val add : t -> float -> unit
(** [add t x] folds [x] into the running sum. *)

val sum : t -> float
(** Current compensated sum. *)

val count : t -> int
(** Number of [add] calls so far. *)

val mean : t -> float
(** [sum / count]; 0 if empty. *)

val sum_array : float array -> float
(** One-shot compensated sum of an array. *)
