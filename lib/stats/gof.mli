(** Goodness-of-fit tests with exact tails.

    {!Chi2} approximates the chi-square tail with Wilson-Hilferty, which
    is fine for dashboards; the distributional test suite
    ([test/test_distributional.ml]) needs p-values it can threshold
    tightly, so this module computes the chi-square CDF through the
    regularized incomplete gamma function (series + continued fraction,
    Lanczos log-gamma) and adds the two-sample Kolmogorov-Smirnov test
    with the standard asymptotic tail. *)

val log_gamma : float -> float
(** [log_gamma x] is [ln (Gamma x)] for [x > 0] (Lanczos, g = 7;
    absolute error below 1e-13 on the tested range).
    @raise Invalid_argument if [x <= 0]. *)

val gamma_p : a:float -> x:float -> float
(** Regularized lower incomplete gamma [P(a, x)], increasing from 0 to 1
    in [x].  @raise Invalid_argument if [a <= 0] or [x < 0]. *)

val gamma_q : a:float -> x:float -> float
(** [1 - gamma_p], computed directly for accuracy in the upper tail. *)

val chi2_cdf : df:int -> float -> float
(** [chi2_cdf ~df x] is [P(X <= x)] for a chi-square with [df] degrees
    of freedom.  @raise Invalid_argument if [df < 1]. *)

val chi2_p_value : df:int -> float -> float
(** Upper-tail p-value [P(X >= x)]. *)

val chi2_statistic : observed:int array -> expected:float array -> float
(** Pearson statistic [sum (o - e)^2 / e].
    @raise Invalid_argument on length mismatch or a non-positive
    expected cell. *)

val chi2_gof_test :
  observed:int array -> probabilities:float array -> float * int * float
(** [chi2_gof_test ~observed ~probabilities] tests the observed counts
    against cell probabilities (expected = p_i * total); returns
    [(statistic, df, p_value)] with [df = cells - 1].  Callers are
    responsible for pooling cells until every expected count is a few
    balls or more.
    @raise Invalid_argument on mismatch, fewer than 2 cells, or an
    empty sample. *)

val chi2_homogeneity_test : a:int array -> b:int array -> float * int * float
(** Two-sample chi-square homogeneity test on two histograms over the
    same cells: are both drawn from one common cell law?  Returns
    [(statistic, df, p_value)]; cells empty in both samples are
    dropped, [df] = remaining cells - 1.
    @raise Invalid_argument on mismatch, an empty sample, or fewer than
    2 jointly non-empty cells. *)

val ks_statistic : float array -> float array -> float
(** Two-sample Kolmogorov-Smirnov statistic
    [D = sup |F_a - F_b|] over the empirical CDFs.  Inputs are copied,
    not mutated.  @raise Invalid_argument on an empty sample. *)

val ks_q : float -> float
(** Asymptotic Kolmogorov tail
    [Q(lambda) = 2 sum_(j>=1) (-1)^(j-1) exp (-2 j^2 lambda^2)],
    clamped to [0, 1]; [Q(lambda) = 1] for [lambda <= 0]. *)

val ks_test : float array -> float array -> float * float
(** [ks_test a b] returns [(d, p)] where [p] is the asymptotic
    two-sample p-value with Stephens' finite-sample correction.  Valid
    for continuous-ish samples of a couple dozen points or more; heavy
    ties make it conservative. *)
