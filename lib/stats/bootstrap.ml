type interval = { low : float; high : float; point : float }

let ci ?(resamples = 2000) ?(confidence = 0.95) ~statistic rng samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Bootstrap.ci: empty sample";
  if not (confidence > 0. && confidence < 1.) then
    invalid_arg "Bootstrap.ci: confidence must be in (0,1)";
  if resamples <= 0 then invalid_arg "Bootstrap.ci: resamples <= 0";
  let point = statistic samples in
  let scratch = Array.make n 0. in
  let stats =
    Array.init resamples (fun _ ->
        for i = 0 to n - 1 do
          scratch.(i) <- samples.(Rbb_prng.Rng.int_below rng n)
        done;
        statistic scratch)
  in
  let alpha = (1. -. confidence) /. 2. in
  let low = Quantile.quantile stats alpha in
  let high = Quantile.quantile stats (1. -. alpha) in
  { low; high; point }

let mean_of a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let mean_ci ?resamples ?confidence rng samples =
  ci ?resamples ?confidence ~statistic:mean_of rng samples
