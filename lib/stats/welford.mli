(** Welford's online algorithm for mean and variance, with min/max
    tracking.  Numerically stable for arbitrarily long streams; used for
    every per-round metric so no experiment needs to retain its full
    time series. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
(** Empty accumulator. *)

val add : t -> float -> unit
(** [add t x] folds observation [x] in. *)

val count : t -> int
(** Number of observations. *)

val mean : t -> float
(** Running mean; 0 if empty. *)

val variance : t -> float
(** Unbiased sample variance (divides by [count - 1]); 0 if fewer than
    two observations. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val std_error : t -> float
(** Standard error of the mean, [stddev / sqrt count]; 0 if empty. *)

val min : t -> float
(** Smallest observation; [infinity] if empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] if empty. *)

val merge : t -> t -> t
(** [merge a b] is the accumulator of the concatenated streams (Chan's
    parallel update); [a] and [b] are unchanged. *)

val pp : Format.formatter -> t -> unit
(** Prints count, mean and stddev. *)
