type result = {
  z_score : float;
  early_mean : float;
  late_mean : float;
  stationary : bool;
}

let window_stats xs lo len =
  let w = Array.sub xs lo len in
  let mean = Array.fold_left ( +. ) 0. w /. float_of_int len in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. w
    /. float_of_int (Stdlib.max 1 (len - 1))
  in
  let ess = Autocorr.effective_sample_size w in
  (mean, var, ess)

let diagnose ?(early_fraction = 0.1) ?(late_fraction = 0.5) ?(threshold = 2.)
    xs =
  let n = Array.length xs in
  if n < 20 then invalid_arg "Geweke.diagnose: series too short";
  if
    not
      (early_fraction > 0. && late_fraction > 0.
      && early_fraction +. late_fraction < 1.)
  then invalid_arg "Geweke.diagnose: windows must be disjoint";
  let n_early = Stdlib.max 2 (int_of_float (float_of_int n *. early_fraction)) in
  let n_late = Stdlib.max 2 (int_of_float (float_of_int n *. late_fraction)) in
  let early_mean, early_var, early_ess = window_stats xs 0 n_early in
  let late_mean, late_var, late_ess = window_stats xs (n - n_late) n_late in
  let se =
    Float.sqrt ((early_var /. early_ess) +. (late_var /. late_ess))
  in
  let z =
    if se = 0. then if early_mean = late_mean then 0. else infinity
    else (early_mean -. late_mean) /. se
  in
  {
    z_score = z;
    early_mean;
    late_mean;
    stationary = Float.abs z < threshold;
  }

let warmup_estimate ?block xs =
  let n = Array.length xs in
  let block = match block with Some b -> Stdlib.max 1 b | None -> Stdlib.max 1 (n / 20) in
  let rec try_drop dropped =
    if n - dropped < 20 then n
    else begin
      let rest = Array.sub xs dropped (n - dropped) in
      if (diagnose rest).stationary then dropped else try_drop (dropped + block)
    end
  in
  try_drop 0
