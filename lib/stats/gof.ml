(* Goodness-of-fit machinery: exact-tail chi-square via the regularized
   incomplete gamma function, and the two-sample Kolmogorov-Smirnov test
   with the asymptotic tail.  Chi2 keeps the cheap Wilson-Hilferty
   approximation for quick monitoring; the distributional test suite
   uses this module because its p-values are good to ~1e-10 in the df
   and sample ranges we test. *)

(* Lanczos approximation (g = 7, 9 coefficients), |error| < 1e-13 for
   real x > 0. *)
let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let log_gamma x =
  if x <= 0. then invalid_arg "Gof.log_gamma: x <= 0";
  if x < 0.5 then
    (* Reflection: Gamma(x) Gamma(1-x) = pi / sin(pi x). *)
    let rec lg x =
      if x < 0.5 then
        log (Float.pi /. sin (Float.pi *. x)) -. lg (1. -. x)
      else
        let x = x -. 1. in
        let a = ref lanczos.(0) in
        for i = 1 to 8 do
          a := !a +. (lanczos.(i) /. (x +. float_of_int i))
        done;
        let t = x +. 7.5 in
        (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
    in
    lg x
  else
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Regularized lower incomplete gamma P(a, x) by the standard split:
   series for x < a + 1, continued fraction (modified Lentz) for the
   complement otherwise.  Both converge in O(sqrt a) iterations. *)
let max_iter = 500
let eps = 3e-15
let tiny = 1e-300

let gamma_p_series a x =
  let ap = ref a and sum = ref (1. /. a) and del = ref (1. /. a) in
  let i = ref 0 in
  (try
     while !i < max_iter do
       incr i;
       ap := !ap +. 1.;
       del := !del *. x /. !ap;
       sum := !sum +. !del;
       if Float.abs !del < Float.abs !sum *. eps then raise Exit
     done
   with Exit -> ());
  !sum *. exp ((a *. log x) -. x -. log_gamma a)

let gamma_q_cf a x =
  let b = ref (x +. 1. -. a) and c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  let i = ref 0 in
  (try
     while !i < max_iter do
       incr i;
       let an = -.float_of_int !i *. (float_of_int !i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < eps then raise Exit
     done
   with Exit -> ());
  !h *. exp ((a *. log x) -. x -. log_gamma a)

let gamma_p ~a ~x =
  if a <= 0. then invalid_arg "Gof.gamma_p: a <= 0";
  if x < 0. then invalid_arg "Gof.gamma_p: x < 0";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series a x
  else 1. -. gamma_q_cf a x

let gamma_q ~a ~x =
  if a <= 0. then invalid_arg "Gof.gamma_q: a <= 0";
  if x < 0. then invalid_arg "Gof.gamma_q: x < 0";
  if x = 0. then 1.
  else if x < a +. 1. then 1. -. gamma_p_series a x
  else gamma_q_cf a x

(* Chi-square with [df] degrees of freedom is Gamma(df/2, 2). *)
let chi2_cdf ~df x =
  if df < 1 then invalid_arg "Gof.chi2_cdf: df < 1";
  if x <= 0. then 0. else gamma_p ~a:(float_of_int df /. 2.) ~x:(x /. 2.)

let chi2_p_value ~df x =
  if df < 1 then invalid_arg "Gof.chi2_p_value: df < 1";
  if x <= 0. then 1. else gamma_q ~a:(float_of_int df /. 2.) ~x:(x /. 2.)

let chi2_statistic ~observed ~expected =
  let k = Array.length observed in
  if k = 0 || Array.length expected <> k then
    invalid_arg "Gof.chi2_statistic: length mismatch or empty";
  let s = ref 0. in
  for i = 0 to k - 1 do
    let e = expected.(i) in
    if e <= 0. then invalid_arg "Gof.chi2_statistic: non-positive expected cell";
    let d = float_of_int observed.(i) -. e in
    s := !s +. (d *. d /. e)
  done;
  !s

let chi2_gof_test ~observed ~probabilities =
  let k = Array.length observed in
  if k < 2 || Array.length probabilities <> k then
    invalid_arg "Gof.chi2_gof_test: need >= 2 matching cells";
  let n = Array.fold_left ( + ) 0 observed in
  if n <= 0 then invalid_arg "Gof.chi2_gof_test: empty sample";
  let expected =
    Array.map (fun p -> p *. float_of_int n) probabilities
  in
  let stat = chi2_statistic ~observed ~expected in
  let df = k - 1 in
  (stat, df, chi2_p_value ~df stat)

(* Two-sample chi-square homogeneity test on a pair of histograms over
   the same cells: under the null both rows are multinomial draws from a
   common cell law; the statistic is the contingency-table chi-square
   with (k - 1) degrees of freedom.  Cells empty in BOTH samples carry
   no information and are dropped (they would divide by zero). *)
let chi2_homogeneity_test ~a ~b =
  let k = Array.length a in
  if k = 0 || Array.length b <> k then
    invalid_arg "Gof.chi2_homogeneity_test: length mismatch or empty";
  let na = Array.fold_left ( + ) 0 a and nb = Array.fold_left ( + ) 0 b in
  if na <= 0 || nb <= 0 then
    invalid_arg "Gof.chi2_homogeneity_test: empty sample";
  let fa = float_of_int na and fb = float_of_int nb in
  let total = fa +. fb in
  let stat = ref 0. and cells = ref 0 in
  for i = 0 to k - 1 do
    let ci = float_of_int (a.(i) + b.(i)) in
    if ci > 0. then begin
      incr cells;
      let ea = ci *. fa /. total and eb = ci *. fb /. total in
      let da = float_of_int a.(i) -. ea and db = float_of_int b.(i) -. eb in
      stat := !stat +. (da *. da /. ea) +. (db *. db /. eb)
    end
  done;
  if !cells < 2 then
    invalid_arg "Gof.chi2_homogeneity_test: fewer than 2 non-empty cells";
  let df = !cells - 1 in
  (!stat, df, chi2_p_value ~df !stat)

(* Two-sample Kolmogorov-Smirnov.  D = sup_x |F_a(x) - F_b(x)| over the
   two empirical CDFs; inputs are copied and sorted. *)
let ks_statistic a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Gof.ks_statistic: empty sample";
  let a = Array.copy a and b = Array.copy b in
  Array.sort compare a;
  Array.sort compare b;
  let fa = float_of_int na and fb = float_of_int nb in
  let i = ref 0 and j = ref 0 and d = ref 0. in
  while !i < na && !j < nb do
    let x = if a.(!i) <= b.(!j) then a.(!i) else b.(!j) in
    while !i < na && a.(!i) <= x do incr i done;
    while !j < nb && b.(!j) <= x do incr j done;
    let diff = Float.abs ((float_of_int !i /. fa) -. (float_of_int !j /. fb)) in
    if diff > !d then d := diff
  done;
  !d

(* Asymptotic KS tail Q(lambda) = 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2
   lambda^2); alternating and fast-decaying, 100 terms is far beyond
   double precision. *)
let ks_q lambda =
  if lambda <= 0. then 1.
  else begin
    let s = ref 0. in
    (try
       for j = 1 to 100 do
         let t =
           exp (-2. *. float_of_int (j * j) *. lambda *. lambda)
         in
         let signed = if j land 1 = 1 then t else -.t in
         s := !s +. signed;
         if t < 1e-18 then raise Exit
       done
     with Exit -> ());
    let q = 2. *. !s in
    if q < 0. then 0. else if q > 1. then 1. else q
  end

let ks_test a b =
  let d = ks_statistic a b in
  let na = float_of_int (Array.length a) and nb = float_of_int (Array.length b) in
  let ne = na *. nb /. (na +. nb) in
  let sqrt_ne = sqrt ne in
  (* Stephens' small-sample correction to the asymptotic argument. *)
  let lambda = (sqrt_ne +. 0.12 +. (0.11 /. sqrt_ne)) *. d in
  (d, ks_q lambda)
