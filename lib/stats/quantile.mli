(** Exact quantiles of collected samples. *)

val quantile : float array -> float -> float
(** [quantile samples q] is the [q]-quantile with linear interpolation
    between order statistics (type-7, the R/NumPy default).  The input
    array is not modified.
    @raise Invalid_argument if [samples] is empty, contains a NaN, or
    [q] outside [[0, 1]]. *)

val median : float array -> float
(** [median samples] is [quantile samples 0.5]. *)

val quantiles : float array -> float list -> float list
(** [quantiles samples qs] computes several quantiles with a single
    sort.  Raises like {!quantile} (NaN samples are rejected). *)

val iqr : float array -> float
(** Interquartile range, [q75 - q25]. *)

val merged_quantile : float array -> float array -> float -> float
(** [merged_quantile a b q] is the [q]-quantile of the union of the two
    samples, computed by a linear merge — exactly
    [quantile (Array.append a b) q].  Raises like {!quantile} (the
    union must be non-empty). *)
