(** Chi-square goodness-of-fit testing.

    Used to validate samplers against their target pmf with an actual
    test statistic (the sampler test suite otherwise only checks
    moments).  The p-value uses the Wilson–Hilferty cube-root normal
    approximation, accurate to ~1e-3 for k ≥ 3 degrees of freedom. *)

val statistic : observed:int array -> expected:float array -> float
(** [Σ (O_i − E_i)² / E_i] over cells with [E_i > 0]; cells with zero
    expectation must have zero observations.
    @raise Invalid_argument on length mismatch, a negative expectation,
    or an observation in a zero-expectation cell. *)

val cdf : df:int -> float -> float
(** Approximate chi-square CDF (Wilson–Hilferty).
    @raise Invalid_argument if [df <= 0]. *)

val p_value : df:int -> float -> float
(** [1 − cdf]: probability of a statistic at least this large under the
    null. *)

val goodness_of_fit :
  observed:int array -> probabilities:float array -> float
(** Convenience: scales [probabilities] (which must sum to ~1) by the
    total observation count and returns the p-value with
    [k − 1] degrees of freedom. *)
