(** Percentile bootstrap confidence intervals.

    The Student-t interval in {!Summary} assumes near-normal sampling
    distributions; cover times and running maxima are skewed, so the
    experiment tables cross-check them with a nonparametric bootstrap. *)

type interval = { low : float; high : float; point : float }

val mean_ci :
  ?resamples:int ->
  ?confidence:float ->
  Rbb_prng.Rng.t ->
  float array ->
  interval
(** [mean_ci rng samples] is the percentile bootstrap CI of the mean
    ([resamples] defaults to 2000, [confidence] to 0.95).
    @raise Invalid_argument on an empty sample, a confidence outside
    (0, 1) or non-positive resamples. *)

val ci :
  ?resamples:int ->
  ?confidence:float ->
  statistic:(float array -> float) ->
  Rbb_prng.Rng.t ->
  float array ->
  interval
(** Bootstrap CI for an arbitrary statistic (median, max, ...). *)
