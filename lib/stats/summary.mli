(** Descriptive summary of a finished sample, with confidence interval.

    This is what every replicated experiment reports per parameter
    setting: the cross-seed distribution of a scalar outcome. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  q25 : float;
  q75 : float;
  ci95_low : float;   (** lower end of the 95% CI on the mean *)
  ci95_high : float;  (** upper end of the 95% CI on the mean *)
}

val of_array : float array -> t
(** @raise Invalid_argument on an empty array. *)

val of_list : float list -> t

val t_critical_95 : int -> float
(** [t_critical_95 df] is the two-sided 97.5% Student-t critical value
    for [df] degrees of freedom (tabulated for small [df], normal limit
    beyond). *)

val pp : Format.formatter -> t -> unit
(** Prints [mean ± half-CI [min, max]]. *)
