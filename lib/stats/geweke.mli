(** Geweke stationarity diagnostic.

    Compares the mean of an early window of a time series against the
    mean of a late window, scaled by autocorrelation-corrected standard
    errors: a |z| beyond ~2 says the series had not reached
    stationarity.  Used to choose warm-up lengths for the long-window
    experiments instead of guessing. *)

type result = {
  z_score : float;
  early_mean : float;
  late_mean : float;
  stationary : bool;  (** |z| < threshold *)
}

val diagnose :
  ?early_fraction:float ->
  ?late_fraction:float ->
  ?threshold:float ->
  float array ->
  result
(** [diagnose xs] compares the first [early_fraction] (default 0.1) of
    the series with the last [late_fraction] (default 0.5), using
    effective sample sizes from {!Autocorr}.  [threshold] defaults to 2.
    A series with zero variance in both windows is stationary iff the
    two means coincide.
    @raise Invalid_argument if the series is shorter than 20 samples or
    the fractions do not leave disjoint windows. *)

val warmup_estimate : ?block:int -> float array -> int
(** [warmup_estimate xs] is the smallest multiple of [block] (default
    [length/20]) such that dropping that prefix makes {!diagnose} pass;
    [length] (i.e. "never") if none does. *)
