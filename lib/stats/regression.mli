(** Least-squares fits used to check the paper's growth laws.

    The shape claims — max load ~ O(log n), convergence ~ O(n), cover
    time ~ O(n log² n) — are verified by fitting measured points to the
    claimed law and reporting the coefficient and R². *)

type fit = {
  slope : float;      (** coefficient [a] in [y = a*x + b] *)
  intercept : float;  (** constant [b] *)
  r2 : float;         (** coefficient of determination *)
}

val linear : (float * float) array -> fit
(** [linear points] is the ordinary least-squares line through
    [(x, y)] pairs.
    @raise Invalid_argument with fewer than 2 points or degenerate x. *)

val against : transform:(float -> float) -> (float * float) array -> fit
(** [against ~transform points] fits [y = a * transform(x) + b]; e.g.
    [~transform:log] checks a logarithmic growth law. *)

val log_log_exponent : (float * float) array -> fit
(** Fits [log y = a * log x + b]: [slope] estimates the polynomial
    exponent of the growth of y in x.  Points with non-positive
    coordinates are rejected with [Invalid_argument]. *)

val pp_fit : Format.formatter -> fit -> unit
