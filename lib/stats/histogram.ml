module Int_hist = struct
  type t = { mutable counts : int array; mutable total : int; mutable max_v : int }

  let create ?(initial_capacity = 16) () =
    { counts = Array.make (Stdlib.max 1 initial_capacity) 0; total = 0; max_v = -1 }

  let ensure t v =
    let n = Array.length t.counts in
    if v >= n then begin
      let n' = Stdlib.max (v + 1) (2 * n) in
      let counts = Array.make n' 0 in
      Array.blit t.counts 0 counts 0 n;
      t.counts <- counts
    end

  let add_many t v k =
    if v < 0 then invalid_arg "Int_hist.add: negative value";
    if k < 0 then invalid_arg "Int_hist.add_many: negative count";
    if k > 0 then begin
      ensure t v;
      t.counts.(v) <- t.counts.(v) + k;
      t.total <- t.total + k;
      if v > t.max_v then t.max_v <- v
    end

  let add t v = add_many t v 1
  let count t v = if v < 0 || v >= Array.length t.counts then 0 else t.counts.(v)
  let total t = t.total
  let max_value t = t.max_v

  let mean t =
    if t.total = 0 then 0.
    else begin
      let acc = ref 0. in
      for v = 0 to t.max_v do
        acc := !acc +. (float_of_int v *. float_of_int t.counts.(v))
      done;
      !acc /. float_of_int t.total
    end

  let fraction_at_least t v =
    if t.total = 0 then 0.
    else begin
      let acc = ref 0 in
      for u = Stdlib.max 0 v to t.max_v do
        acc := !acc + t.counts.(u)
      done;
      float_of_int !acc /. float_of_int t.total
    end

  let to_list t =
    let rec collect v acc =
      if v < 0 then acc
      else if t.counts.(v) > 0 then collect (v - 1) ((v, t.counts.(v)) :: acc)
      else collect (v - 1) acc
    in
    collect t.max_v []

  let pp ppf t =
    Format.fprintf ppf "@[<h>{";
    List.iter (fun (v, c) -> Format.fprintf ppf " %d:%d" v c) (to_list t);
    Format.fprintf ppf " }@]"

  (* Exact counts make merging exact: the merged histogram is
     indistinguishable from one fed the concatenated observations. *)
  let merge a b =
    let t = create ~initial_capacity:(Stdlib.max 1 (Stdlib.max a.max_v b.max_v + 1)) () in
    List.iter (fun (v, c) -> add_many t v c) (to_list a);
    List.iter (fun (v, c) -> add_many t v c) (to_list b);
    t
end

module Float_hist = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array;
    mutable underflow : int;
    mutable overflow : int;
    mutable total : int;
  }

  let create ~lo ~hi ~buckets =
    if hi <= lo then invalid_arg "Float_hist.create: hi <= lo";
    if buckets <= 0 then invalid_arg "Float_hist.create: buckets <= 0";
    {
      lo;
      hi;
      width = (hi -. lo) /. float_of_int buckets;
      counts = Array.make buckets 0;
      underflow = 0;
      overflow = 0;
      total = 0;
    }

  let add t x =
    t.total <- t.total + 1;
    if x < t.lo then t.underflow <- t.underflow + 1
    else if x >= t.hi then t.overflow <- t.overflow + 1
    else begin
      let i = int_of_float ((x -. t.lo) /. t.width) in
      let i = Stdlib.min i (Array.length t.counts - 1) in
      t.counts.(i) <- t.counts.(i) + 1
    end

  let total t = t.total
  let bucket_count t i = t.counts.(i)
  let underflow t = t.underflow
  let overflow t = t.overflow

  let bucket_bounds t i =
    let lo = t.lo +. (float_of_int i *. t.width) in
    (lo, lo +. t.width)

  let quantile t q =
    if not (q >= 0. && q <= 1.) then invalid_arg "Float_hist.quantile: q not in [0,1]";
    if t.total = 0 then invalid_arg "Float_hist.quantile: empty histogram";
    let target = q *. float_of_int t.total in
    let rec scan i acc =
      if i >= Array.length t.counts then t.hi
      else begin
        let acc' = acc + t.counts.(i) in
        if float_of_int acc' >= target then begin
          let within =
            if t.counts.(i) = 0 then 0.
            else (target -. float_of_int acc) /. float_of_int t.counts.(i)
          in
          let lo, _ = bucket_bounds t i in
          lo +. (within *. t.width)
        end
        else scan (i + 1) acc'
      end
    in
    scan 0 t.underflow

  (* Bucket-wise sum; both operands must share the geometry, since
     counts in differently-cut buckets cannot be combined without
     losing the quantile guarantee. *)
  let merge a b =
    if a.lo <> b.lo || a.hi <> b.hi
       || Array.length a.counts <> Array.length b.counts
    then invalid_arg "Float_hist.merge: geometry mismatch";
    let t = create ~lo:a.lo ~hi:a.hi ~buckets:(Array.length a.counts) in
    Array.iteri (fun i c -> t.counts.(i) <- c + b.counts.(i)) a.counts;
    t.underflow <- a.underflow + b.underflow;
    t.overflow <- a.overflow + b.overflow;
    t.total <- a.total + b.total;
    t
end
