type t = { sorted : float array }

let of_array samples =
  if Array.length samples = 0 then invalid_arg "Ecdf.of_array: empty sample";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  { sorted }

let size t = Array.length t.sorted

let eval t x =
  (* Count of samples <= x via binary search for the upper bound. *)
  let n = Array.length t.sorted in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.sorted.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  float_of_int !lo /. float_of_int n

let quantile t q = Quantile.quantile t.sorted q

let ks_distance a b =
  (* Merge scan over both sorted samples. *)
  let na = Array.length a.sorted and nb = Array.length b.sorted in
  let fa = float_of_int na and fb = float_of_int nb in
  let i = ref 0 and j = ref 0 in
  let best = ref 0. in
  while !i < na || !j < nb do
    let x =
      if !i >= na then b.sorted.(!j)
      else if !j >= nb then a.sorted.(!i)
      else Float.min a.sorted.(!i) b.sorted.(!j)
    in
    while !i < na && a.sorted.(!i) <= x do
      incr i
    done;
    while !j < nb && b.sorted.(!j) <= x do
      incr j
    done;
    let d = Float.abs ((float_of_int !i /. fa) -. (float_of_int !j /. fb)) in
    if d > !best then best := d
  done;
  !best

let ks_critical ~alpha ~n1 ~n2 =
  if not (alpha > 0. && alpha < 1.) then invalid_arg "Ecdf.ks_critical: bad alpha";
  if n1 <= 0 || n2 <= 0 then invalid_arg "Ecdf.ks_critical: bad sizes";
  let c = Float.sqrt (-.Float.log (alpha /. 2.) /. 2.) in
  c *. Float.sqrt (float_of_int (n1 + n2) /. float_of_int (n1 * n2))
