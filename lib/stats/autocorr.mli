(** Autocorrelation analysis of stationary time series.

    The per-round series M(t) is strongly autocorrelated (loads move by
    one ball per round), so naive CIs on its time average are wrong.
    These estimators quantify that: the autocorrelation function, the
    integrated autocorrelation time, and the effective sample size used
    to rescale error bars in the stationarity experiments. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation xs k] is the lag-[k] sample autocorrelation
    (biased, normalized by the lag-0 variance).  1 at lag 0; 0 for a
    constant series (by convention).
    @raise Invalid_argument if [k < 0], [k >= length], or the series is
    empty. *)

val autocorrelation_function : float array -> max_lag:int -> float array
(** ACF for lags [0..max_lag] with a single pass per lag. *)

val integrated_time : ?max_lag:int -> float array -> float
(** Integrated autocorrelation time
    [tau = 1 + 2 * sum_k rho(k)], summed with Geyer's initial-positive-
    sequence truncation (stop at the first non-positive pair sum).
    At least 1.  [max_lag] defaults to [length/4]. *)

val effective_sample_size : ?max_lag:int -> float array -> float
(** [n / tau]: how many independent samples the series is worth. *)
