(** Empirical cumulative distribution functions and two-sample
    Kolmogorov–Smirnov distances.

    Used to compare whole distributions rather than means: e.g. the
    cover-time distribution under faults vs without, or a sampler's
    output against a reference implementation. *)

type t

val of_array : float array -> t
(** @raise Invalid_argument on an empty sample. *)

val size : t -> int

val eval : t -> float -> float
(** [eval t x] is the right-continuous empirical CDF
    [P̂(X <= x)] (0 below the sample minimum, 1 at and above the
    maximum). *)

val quantile : t -> float -> float
(** Inverse CDF by order statistics (type-7 interpolation). *)

val ks_distance : t -> t -> float
(** Two-sample Kolmogorov–Smirnov statistic
    [sup_x |F̂₁(x) − F̂₂(x)|], computed exactly by the merge scan. *)

val ks_critical : alpha:float -> n1:int -> n2:int -> float
(** Large-sample critical value
    [c(alpha) sqrt((n1+n2)/(n1 n2))] with
    [c(alpha) = sqrt(-ln(alpha/2)/2)]; the null "same distribution" is
    rejected at level [alpha] when {!ks_distance} exceeds this.
    @raise Invalid_argument unless [0 < alpha < 1] and sizes are
    positive. *)
