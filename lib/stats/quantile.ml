let of_sorted sorted q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Quantile.quantile: q not in [0,1]";
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile.quantile: empty sample";
  if n = 1 then sorted.(0)
  else begin
    (* Type-7: h = (n-1) q; interpolate between floor and ceil. *)
    let h = float_of_int (n - 1) *. q in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = h -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let sorted_copy samples =
  (* Float.compare keeps the sort on the unboxed-float fast path
     (polymorphic compare would take the generic slow path on the hot
     E1/E8 summary pipeline) and gives NaN a total order, but a NaN in
     the sample would still silently poison the interpolation, so
     reject it up front. *)
  Array.iter
    (fun x -> if Float.is_nan x then invalid_arg "Quantile: NaN sample")
    samples;
  let a = Array.copy samples in
  Array.sort Float.compare a;
  a

let quantile samples q = of_sorted (sorted_copy samples) q
let median samples = quantile samples 0.5

let quantiles samples qs =
  let sorted = sorted_copy samples in
  List.map (of_sorted sorted) qs

let iqr samples =
  match quantiles samples [ 0.25; 0.75 ] with
  | [ q25; q75 ] -> q75 -. q25
  | _ -> assert false

(* Quantile of the union of two already-sorted samples, via a linear
   merge instead of concatenate-and-resort.  Exact: equals
   [quantile (Array.append a b) q]. *)
let merged_quantile a b q =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then of_sorted (sorted_copy b) q
  else if nb = 0 then of_sorted (sorted_copy a) q
  else begin
    let sa = sorted_copy a and sb = sorted_copy b in
    let merged = Array.make (na + nb) 0. in
    let i = ref 0 and j = ref 0 in
    for k = 0 to na + nb - 1 do
      if !i < na && (!j >= nb || Float.compare sa.(!i) sb.(!j) <= 0) then begin
        merged.(k) <- sa.(!i);
        Stdlib.incr i
      end
      else begin
        merged.(k) <- sb.(!j);
        Stdlib.incr j
      end
    done;
    of_sorted merged q
  end
