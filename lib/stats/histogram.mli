(** Histograms over integer and float observations.

    The integer histogram is the workhorse for load distributions: bin
    loads are small non-negative ints and we want exact counts per value
    (e.g. "how many bins held load k, summed over all rounds"). *)

module Int_hist : sig
  type t
  (** Exact counts per non-negative integer value; grows on demand. *)

  val create : ?initial_capacity:int -> unit -> t
  val add : t -> int -> unit
  (** [add t v] counts one observation of value [v].
      @raise Invalid_argument if [v < 0]. *)

  val add_many : t -> int -> int -> unit
  (** [add_many t v k] counts [k] observations of value [v]. *)

  val count : t -> int -> int
  (** Observations of exactly value [v] (0 if never seen). *)

  val total : t -> int
  (** Total number of observations. *)

  val max_value : t -> int
  (** Largest value observed; [-1] if empty. *)

  val mean : t -> float
  val fraction_at_least : t -> int -> float
  (** [fraction_at_least t v] is the empirical P(X >= v). *)

  val to_list : t -> (int * int) list
  (** [(value, count)] pairs for non-zero counts, ascending. *)

  val pp : Format.formatter -> t -> unit

  val merge : t -> t -> t
  (** A fresh histogram holding both operands' observations.  Exact:
      indistinguishable from one fed the concatenated inputs, so totals
      add and every per-value count adds. *)
end

module Float_hist : sig
  type t
  (** Fixed-width buckets over [[lo, hi)], plus underflow/overflow. *)

  val create : lo:float -> hi:float -> buckets:int -> t
  (** @raise Invalid_argument if [hi <= lo] or [buckets <= 0]. *)

  val add : t -> float -> unit
  val total : t -> int
  val bucket_count : t -> int -> int
  (** Count in bucket [i] of [[0, buckets)]. *)

  val underflow : t -> int
  val overflow : t -> int
  val bucket_bounds : t -> int -> float * float
  (** Inclusive-exclusive bounds of bucket [i]. *)

  val quantile : t -> float -> float
  (** [quantile t q] approximates the [q]-quantile by linear
      interpolation within the containing bucket.
      @raise Invalid_argument unless [0 <= q <= 1] and [t] non-empty. *)

  val merge : t -> t -> t
  (** Bucket-wise sum of two histograms with identical geometry
      ([lo], [hi], bucket count): totals, per-bucket counts and
      under/overflow all add, so quantiles of the merge equal quantiles
      of the concatenated observations within one bucket width.
      @raise Invalid_argument on a geometry mismatch. *)
end
