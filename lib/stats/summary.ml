type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  q25 : float;
  q75 : float;
  ci95_low : float;
  ci95_high : float;
}

(* Two-sided 97.5% Student-t critical values; indexed by df, the normal
   limit 1.96 beyond df = 30. *)
let t_table =
  [|
    nan; 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262;
    2.228; 2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093;
    2.086; 2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045;
    2.042;
  |]

let t_critical_95 df =
  if df <= 0 then invalid_arg "Summary.t_critical_95: df <= 0";
  if df < Array.length t_table then t_table.(df) else 1.96

let of_array samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  let w = Welford.create () in
  Array.iter (Welford.add w) samples;
  let mean = Welford.mean w and stddev = Welford.stddev w in
  let median, q25, q75 =
    match Quantile.quantiles samples [ 0.5; 0.25; 0.75 ] with
    | [ m; a; b ] -> (m, a, b)
    | _ -> assert false
  in
  let half =
    if n < 2 then 0.
    else t_critical_95 (n - 1) *. stddev /. Float.sqrt (float_of_int n)
  in
  {
    n;
    mean;
    stddev;
    min = Welford.min w;
    max = Welford.max w;
    median;
    q25;
    q75;
    ci95_low = mean -. half;
    ci95_high = mean +. half;
  }

let of_list samples = of_array (Array.of_list samples)

let pp ppf t =
  Format.fprintf ppf "%.4g ± %.2g [%.4g, %.4g]" t.mean
    ((t.ci95_high -. t.ci95_low) /. 2.)
    t.min t.max
