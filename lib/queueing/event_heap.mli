(** Binary min-heap keyed by float priorities: the event queue of the
    discrete-event Jackson simulator. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> priority:float -> 'a -> unit
(** O(log n). *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority entry; ties broken
    arbitrarily.  O(log n). *)

val peek_min : 'a t -> (float * 'a) option

val clear : 'a t -> unit
