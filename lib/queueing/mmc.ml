let offered_load ~lambda ~mu =
  if not (lambda >= 0. && mu > 0.) then
    invalid_arg "Mmc: need lambda >= 0 and mu > 0";
  lambda /. mu

let utilization ~lambda ~mu ~c =
  if c < 1 then invalid_arg "Mmc: c < 1";
  let rho = offered_load ~lambda ~mu /. float_of_int c in
  if rho >= 1. then invalid_arg "Mmc: unstable (lambda >= c*mu)";
  rho

(* P0 and the a^k/k! ladder, computed with a running term to avoid
   factorial overflow. *)
let p0_and_term_c ~lambda ~mu ~c =
  let a = offered_load ~lambda ~mu in
  let rho = utilization ~lambda ~mu ~c in
  let sum = ref 0. in
  let term = ref 1. in
  (* term_k = a^k / k! *)
  for k = 0 to c - 1 do
    sum := !sum +. !term;
    term := !term *. a /. float_of_int (k + 1)
  done;
  (* term now = a^c / c! *)
  let tail = !term /. (1. -. rho) in
  let p0 = 1. /. (!sum +. tail) in
  (p0, !term)

let erlang_c ~lambda ~mu ~c =
  if lambda = 0. then 0.
  else begin
    let rho = utilization ~lambda ~mu ~c in
    let p0, term_c = p0_and_term_c ~lambda ~mu ~c in
    p0 *. term_c /. (1. -. rho)
  end

let mean_queue_length ~lambda ~mu ~c =
  if lambda = 0. then 0.
  else begin
    let rho = utilization ~lambda ~mu ~c in
    erlang_c ~lambda ~mu ~c *. rho /. (1. -. rho)
  end

let mean_number_in_system ~lambda ~mu ~c =
  mean_queue_length ~lambda ~mu ~c +. offered_load ~lambda ~mu

let mean_waiting_time ~lambda ~mu ~c =
  if lambda = 0. then 0. else mean_queue_length ~lambda ~mu ~c /. lambda

let stationary_pmf ~lambda ~mu ~c k =
  if k < 0 then 0.
  else begin
    let a = offered_load ~lambda ~mu in
    let rho = utilization ~lambda ~mu ~c in
    let p0, term_c = p0_and_term_c ~lambda ~mu ~c in
    if k < c then begin
      (* a^k / k! computed iteratively. *)
      let term = ref 1. in
      for i = 1 to k do
        term := !term *. a /. float_of_int i
      done;
      p0 *. !term
    end
    else p0 *. term_c *. (rho ** float_of_int (k - c))
  end
