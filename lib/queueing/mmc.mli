(** Closed-form M/M/c quantities (Erlang-C).

    The continuous-time companion of the service-capacity ablation E31:
    a bin that releases up to [c] balls per round corresponds to a
    [c]-server queue.  All formulas are the textbook ones for arrival
    rate [lambda], per-server rate [mu], [c] servers, stable when
    [lambda < c·mu]. *)

val offered_load : lambda:float -> mu:float -> float
(** [a = lambda / mu] (in Erlangs).
    @raise Invalid_argument unless [lambda >= 0] and [mu > 0]. *)

val utilization : lambda:float -> mu:float -> c:int -> float
(** [rho = a / c].  @raise Invalid_argument unless [c >= 1] and
    [rho < 1]. *)

val erlang_c : lambda:float -> mu:float -> c:int -> float
(** Probability an arriving customer waits (all servers busy). *)

val mean_queue_length : lambda:float -> mu:float -> c:int -> float
(** Expected number waiting (excluding those in service):
    [Lq = C · rho / (1 - rho)]. *)

val mean_number_in_system : lambda:float -> mu:float -> c:int -> float
(** [L = Lq + a]. *)

val mean_waiting_time : lambda:float -> mu:float -> c:int -> float
(** [Wq = Lq / lambda] (0 when [lambda = 0]). *)

val stationary_pmf : lambda:float -> mu:float -> c:int -> int -> float
(** [P(N = k)] for the number in system. *)
