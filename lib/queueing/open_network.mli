(** Open network of parallel M/M/1 queues: the continuous-time analogue
    of the probabilistic Tetris / "leaky bins" process (paper
    reference [18]).

    Tokens arrive in a global Poisson stream of rate [lambda * n], each
    landing at a uniformly random node (equivalently, independent
    Poisson([lambda]) streams per node); every node serves at rate
    [mu] and a served token {e leaves the system} — exactly Tetris'
    discard-one-throw-fresh dynamics with exponential clocks instead of
    synchronous rounds.  Each node is then an independent M/M/1 queue,
    so {!Mm1} gives exact stationary references. *)

type t

val create : ?mu:float -> lambda:float -> n:int -> rng:Rbb_prng.Rng.t -> unit -> t
(** Starts empty.  [mu] defaults to 1.0.
    @raise Invalid_argument unless [0 <= lambda < mu] and [n > 0]. *)

val now : t -> float
val events_processed : t -> int

val load : t -> int -> int
val max_load : t -> int
val empty_nodes : t -> int
val total_tokens : t -> int

val run_events : t -> count:int -> unit
(** Process the next [count] events (arrivals and departures). *)

val run_until : t -> time:float -> unit

val time_average_max_load : t -> float
val time_average_total : t -> float
(** Time-weighted mean number of tokens in the system; the M/M/1
    reference is [n * rho / (1 - rho)]. *)
