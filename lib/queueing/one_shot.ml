let max_load rng ~n ~m =
  if n <= 0 || m < 0 then invalid_arg "One_shot.max_load: bad arguments";
  let loads = Array.make n 0 in
  let best = ref 0 in
  for _ = 1 to m do
    let u = Rbb_prng.Rng.int_below rng n in
    loads.(u) <- loads.(u) + 1;
    if loads.(u) > !best then best := loads.(u)
  done;
  !best

let max_load_samples rng ~n ~m ~trials =
  Array.init trials (fun _ -> float_of_int (max_load rng ~n ~m))

let theoretical_max_load n =
  if n < 3 then invalid_arg "One_shot.theoretical_max_load: n < 3";
  let ln = Float.log (float_of_int n) in
  ln /. Float.log ln
