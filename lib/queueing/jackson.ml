type t = {
  rng : Rbb_prng.Rng.t;
  rates : float array;  (* per-node service rates *)
  loads : int array;
  epoch : int array;  (* invalidates stale completion events *)
  heap : (int * int) Event_heap.t;  (* (node, epoch at scheduling) *)
  mutable now : float;
  mutable events : int;
  mutable max_load : int;
  mutable empty : int;
  (* time-weighted max-load integral *)
  mutable weighted_max : float;
  mutable last_change : float;
}

let schedule t u =
  let dt = Rbb_prng.Sampler.exponential t.rng ~rate:t.rates.(u) in
  Event_heap.add t.heap ~priority:(t.now +. dt) (u, t.epoch.(u))

let create_with_rates ~rates ~rng ~init =
  let loads = Rbb_core.Config.loads init in
  let n = Array.length loads in
  if Array.length rates <> n then
    invalid_arg "Jackson.create_heterogeneous: rates length differs from bin count";
  Array.iter
    (fun r -> if not (r > 0.) then invalid_arg "Jackson: service rate <= 0")
    rates;
  let t =
    {
      rng;
      rates = Array.copy rates;
      loads;
      epoch = Array.make n 0;
      heap = Event_heap.create ~capacity:(2 * n) ();
      now = 0.;
      events = 0;
      max_load = Rbb_core.Config.max_load init;
      empty = Rbb_core.Config.empty_bins init;
      weighted_max = 0.;
      last_change = 0.;
    }
  in
  for u = 0 to n - 1 do
    if loads.(u) > 0 then schedule t u
  done;
  t

let create ?(mu = 1.0) ~rng ~init () =
  if not (mu > 0.) then invalid_arg "Jackson.create: mu <= 0";
  create_with_rates ~rates:(Array.make (Rbb_core.Config.n init) mu) ~rng ~init

let create_heterogeneous ~rates ~rng ~init () = create_with_rates ~rates ~rng ~init

let stationary_weights_reference ~rates ~m =
  let n = Array.length rates in
  if n = 0 then invalid_arg "Jackson.stationary_weights_reference: no nodes";
  Array.iter
    (fun r -> if not (r > 0.) then invalid_arg "Jackson: service rate <= 0")
    rates;
  let states = ref 1 in
  (* C(m+n-1, n-1) guard without materializing anything yet. *)
  let () =
    let acc = ref 1. in
    for i = 1 to n - 1 do
      acc := !acc *. float_of_int (m + i) /. float_of_int i
    done;
    if !acc > 2_000_000. then
      invalid_arg "Jackson.stationary_weights_reference: state space too large";
    states := int_of_float !acc
  in
  ignore !states;
  (* Enumerate compositions of m into n parts; weight prod (1/mu_u)^q_u. *)
  let expected = Array.make n 0. in
  let total_weight = ref 0. in
  let q = Array.make n 0 in
  let rec fill i remaining =
    if i = n - 1 then begin
      q.(i) <- remaining;
      let w = ref 1. in
      for u = 0 to n - 1 do
        w := !w *. ((1. /. rates.(u)) ** float_of_int q.(u))
      done;
      total_weight := !total_weight +. !w;
      for u = 0 to n - 1 do
        expected.(u) <- expected.(u) +. (!w *. float_of_int q.(u))
      done
    end
    else
      for v = 0 to remaining do
        q.(i) <- v;
        fill (i + 1) (remaining - v)
      done
  in
  fill 0 m;
  Array.map (fun e -> e /. !total_weight) expected

let now t = t.now
let events_processed t = t.events

let load t u =
  if u < 0 || u >= Array.length t.loads then invalid_arg "Jackson.load: out of range";
  t.loads.(u)

let max_load t = t.max_load
let empty_bins t = t.empty
let config t = Rbb_core.Config.of_array t.loads

let recompute_max t =
  t.max_load <- Array.fold_left Stdlib.max 0 t.loads

let advance_clock t time =
  t.weighted_max <- t.weighted_max +. (float_of_int t.max_load *. (time -. t.last_change));
  t.last_change <- time;
  t.now <- time

(* Process one valid completion event; returns false if the heap is
   empty (m = 0). *)
let process_one t =
  let rec next () =
    match Event_heap.pop_min t.heap with
    | None -> None
    | Some (time, (u, ep)) ->
        (* A node's epoch advances when its queue empties; completions
           scheduled before that are stale. *)
        if t.epoch.(u) = ep && t.loads.(u) > 0 then Some (time, u) else next ()
  in
  match next () with
  | None -> false
  | Some (time, u) ->
      advance_clock t time;
      t.events <- t.events + 1;
      let n = Array.length t.loads in
      let v = Rbb_prng.Rng.int_below t.rng n in
      t.loads.(u) <- t.loads.(u) - 1;
      if t.loads.(u) = 0 then begin
        t.empty <- t.empty + 1;
        t.epoch.(u) <- t.epoch.(u) + 1
      end
      else schedule t u;
      if t.loads.(v) = 0 then begin
        t.empty <- t.empty - 1;
        schedule t v
      end;
      t.loads.(v) <- t.loads.(v) + 1;
      if t.loads.(v) > t.max_load then t.max_load <- t.loads.(v)
      else if t.loads.(u) + 1 = t.max_load then recompute_max t;
      true

let run_events t ~count =
  let k = ref 0 in
  while !k < count && process_one t do
    incr k
  done

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Event_heap.peek_min t.heap with
    | Some (next_time, _) when next_time <= time ->
        if not (process_one t) then continue := false
    | Some _ | None -> continue := false
  done;
  if time > t.now then advance_clock t time

let time_average_max_load t =
  if t.now = 0. then float_of_int t.max_load
  else begin
    let total = t.weighted_max +. (float_of_int t.max_load *. (t.now -. t.last_change)) in
    total /. t.now
  end

(* Number of compositions of [m] into [n] parts with every part <= k,
   by inclusion-exclusion; float-valued to postpone overflow. *)
let compositions_bounded ~n ~m ~k =
  let choose a b =
    if b < 0 || b > a then 0.
    else begin
      let acc = ref 1. in
      for i = 1 to b do
        acc := !acc *. float_of_int (a - b + i) /. float_of_int i
      done;
      !acc
    end
  in
  let acc = ref 0. in
  let j = ref 0 in
  while !j <= n && m - (!j * (k + 1)) >= 0 do
    let term =
      choose n !j *. choose (m - (!j * (k + 1)) + n - 1) (n - 1)
    in
    acc := !acc +. (if !j mod 2 = 0 then term else -.term);
    incr j
  done;
  !acc

let stationary_max_load_expectation ~n ~m =
  if n <= 0 || m < 0 then
    invalid_arg "Jackson.stationary_max_load_expectation: bad arguments";
  let total = compositions_bounded ~n ~m ~k:m in
  if not (Float.is_finite total) || total <= 0. then
    invalid_arg "Jackson.stationary_max_load_expectation: overflow";
  (* E[M] = sum_{k>=1} P(M >= k) = sum_k (1 - #bounded(k-1)/total). *)
  let acc = ref 0. in
  for k = 1 to m do
    let p_le = compositions_bounded ~n ~m ~k:(k - 1) /. total in
    acc := !acc +. (1. -. p_le)
  done;
  !acc
