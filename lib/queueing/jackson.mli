(** Closed Jackson network on the clique: the classical-queueing-theory
    relative of the RBB process (paper §1.3).

    [n] identical exponential-service nodes, [m] circulating tokens,
    uniform routing over all [n] nodes.  Time is continuous, so events
    are sequential and the chain is reversible enough to have the
    textbook product-form stationary law: with identical rates, the
    stationary distribution is uniform over all load configurations.
    The paper contrasts this analytical tractability with its own
    (parallel, non-product-form) chain; experiment E17 compares their
    stationary max loads.

    Implementation: discrete-event simulation over an {!Event_heap}.
    Each busy node has exactly one scheduled completion; stale events
    (from a node whose service was restarted) are filtered with a
    per-node epoch counter. *)

type t

val create :
  ?mu:float -> rng:Rbb_prng.Rng.t -> init:Rbb_core.Config.t -> unit -> t
(** [mu] is the per-node service rate (default 1.0).
    @raise Invalid_argument if [mu <= 0]. *)

val create_heterogeneous :
  rates:float array -> rng:Rbb_prng.Rng.t -> init:Rbb_core.Config.t -> unit -> t
(** Per-node service rates.  With uniform routing the product-form
    stationary law becomes [π(q) ∝ ∏_u (1/rates.(u))^{q_u}]; slow nodes
    accumulate geometrically more tokens ({!stationary_weights_reference}).
    @raise Invalid_argument on a length mismatch or a non-positive
    rate. *)

val stationary_weights_reference : rates:float array -> m:int -> float array
(** Exact stationary expected load per node for the heterogeneous
    closed network on [n = length rates] nodes with [m] tokens, by
    direct enumeration of the product-form law over all compositions
    (small systems only: the state count is [C(m+n-1, n-1)]).
    @raise Invalid_argument if the state space exceeds 2 million. *)

val now : t -> float
(** Simulated time. *)

val events_processed : t -> int

val load : t -> int -> int
val max_load : t -> int
val empty_bins : t -> int
val config : t -> Rbb_core.Config.t

val run_events : t -> count:int -> unit
(** Process the next [count] service completions. *)

val run_until : t -> time:float -> unit
(** Advance simulated time to [time]. *)

val time_average_max_load : t -> float
(** Time-weighted average of the max load since creation. *)

val stationary_max_load_expectation : n:int -> m:int -> float
(** Exact expected max load under the product-form stationary law
    (uniform over compositions of [m] into [n] parts), by
    inclusion–exclusion counting — the analytic line E17 prints.
    @raise Invalid_argument when the counts overflow. *)
