(** Closed-form M/M/1 quantities.

    In the open network ({!Open_network}) every node is an independent
    M/M/1 queue, so these formulas are exact references for the
    continuous-time analogue of the "leaky bins" Tetris variant
    (experiment E16/E19 cross-check). *)

val utilization : lambda:float -> mu:float -> float
(** [rho = lambda / mu].  @raise Invalid_argument unless
    [0 <= lambda < mu]. *)

val queue_length_pmf : lambda:float -> mu:float -> int -> float
(** Stationary [P(Q = k) = (1 - rho) rho^k] (number in system). *)

val mean_queue_length : lambda:float -> mu:float -> float
(** [rho / (1 - rho)]. *)

val mean_sojourn_time : lambda:float -> mu:float -> float
(** [1 / (mu - lambda)] (Little's law over the system). *)

val expected_max_of_n : lambda:float -> mu:float -> n:int -> float
(** Exact [E[max of n i.i.d. stationary queues]
    = Σ_{k≥1} (1 − (1 − rho^k)^n)], summed to convergence — the
    product-form prediction of the open network's max load. *)
