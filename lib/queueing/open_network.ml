type event = Arrival | Completion of int * int  (* node, epoch *)

type t = {
  rng : Rbb_prng.Rng.t;
  lambda_total : float;  (* global arrival rate = lambda * n *)
  mu : float;
  loads : int array;
  epoch : int array;
  heap : event Event_heap.t;
  mutable now : float;
  mutable events : int;
  mutable max_load : int;
  mutable empty : int;
  mutable total : int;
  mutable weighted_max : float;
  mutable weighted_total : float;
  mutable last_change : float;
}

let schedule_arrival t =
  let dt = Rbb_prng.Sampler.exponential t.rng ~rate:t.lambda_total in
  Event_heap.add t.heap ~priority:(t.now +. dt) Arrival

let schedule_completion t u =
  let dt = Rbb_prng.Sampler.exponential t.rng ~rate:t.mu in
  Event_heap.add t.heap ~priority:(t.now +. dt) (Completion (u, t.epoch.(u)))

let create ?(mu = 1.0) ~lambda ~n ~rng () =
  if n <= 0 then invalid_arg "Open_network.create: n <= 0";
  if not (lambda >= 0. && mu > 0. && lambda < mu) then
    invalid_arg "Open_network.create: need 0 <= lambda < mu";
  let t =
    {
      rng;
      lambda_total = lambda *. float_of_int n;
      mu;
      loads = Array.make n 0;
      epoch = Array.make n 0;
      heap = Event_heap.create ~capacity:(2 * n) ();
      now = 0.;
      events = 0;
      max_load = 0;
      empty = n;
      total = 0;
      weighted_max = 0.;
      weighted_total = 0.;
      last_change = 0.;
    }
  in
  if lambda > 0. then schedule_arrival t;
  t

let now t = t.now
let events_processed t = t.events

let load t u =
  if u < 0 || u >= Array.length t.loads then
    invalid_arg "Open_network.load: out of range";
  t.loads.(u)

let max_load t = t.max_load
let empty_nodes t = t.empty
let total_tokens t = t.total

let advance_clock t time =
  let dt = time -. t.last_change in
  t.weighted_max <- t.weighted_max +. (float_of_int t.max_load *. dt);
  t.weighted_total <- t.weighted_total +. (float_of_int t.total *. dt);
  t.last_change <- time;
  t.now <- time

let recompute_max t = t.max_load <- Array.fold_left Stdlib.max 0 t.loads

let process_one t =
  let rec next () =
    match Event_heap.pop_min t.heap with
    | None -> None
    | Some (time, Arrival) -> Some (time, Arrival)
    | Some (time, Completion (u, ep)) ->
        if t.epoch.(u) = ep && t.loads.(u) > 0 then Some (time, Completion (u, ep))
        else next ()
  in
  match next () with
  | None -> false
  | Some (time, ev) ->
      advance_clock t time;
      t.events <- t.events + 1;
      (match ev with
      | Arrival ->
          let v = Rbb_prng.Rng.int_below t.rng (Array.length t.loads) in
          if t.loads.(v) = 0 then begin
            t.empty <- t.empty - 1;
            schedule_completion t v
          end;
          t.loads.(v) <- t.loads.(v) + 1;
          t.total <- t.total + 1;
          if t.loads.(v) > t.max_load then t.max_load <- t.loads.(v);
          schedule_arrival t
      | Completion (u, _) ->
          let was_max = t.loads.(u) = t.max_load in
          t.loads.(u) <- t.loads.(u) - 1;
          t.total <- t.total - 1;
          if t.loads.(u) = 0 then begin
            t.empty <- t.empty + 1;
            t.epoch.(u) <- t.epoch.(u) + 1
          end
          else schedule_completion t u;
          if was_max then recompute_max t);
      true

let run_events t ~count =
  let k = ref 0 in
  while !k < count && process_one t do
    incr k
  done

let run_until t ~time =
  let continue = ref true in
  while !continue do
    match Event_heap.peek_min t.heap with
    | Some (next_time, _) when next_time <= time ->
        if not (process_one t) then continue := false
    | Some _ | None -> continue := false
  done;
  if time > t.now then advance_clock t time

let time_average_max_load t =
  if t.now = 0. then float_of_int t.max_load
  else
    (t.weighted_max +. (float_of_int t.max_load *. (t.now -. t.last_change)))
    /. t.now

let time_average_total t =
  if t.now = 0. then float_of_int t.total
  else
    (t.weighted_total +. (float_of_int t.total *. (t.now -. t.last_change)))
    /. t.now
