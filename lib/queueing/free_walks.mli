(** Unconstrained independent parallel random walks: every token moves
    {e every} round (no one-token-per-bin release constraint).

    This is what the RBB process would be without queueing: per-round
    loads are a fresh multinomial throw, so the max load per round is
    the one-shot law and the m-walker cover time is a simple parallel
    coupon collector.  Used as the "no correlation" baseline in the
    cover-time and max-load comparisons (E8, E12). *)

type t

val create : rng:Rbb_prng.Rng.t -> n:int -> m:int -> track_cover:bool -> t
(** Walkers start at bins [0, 1, ..., m-1 mod n]. *)

val step : t -> unit
(** Every walker re-assigns to a uniform bin simultaneously. *)

val round : t -> int
val max_load : t -> int
val covered_walkers : t -> int
(** Walkers that have visited every bin (requires [track_cover]). *)

val all_covered : t -> bool
val cover_time : t -> int option

val run_until_covered : t -> max_rounds:int -> int option
