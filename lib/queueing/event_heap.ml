type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  {
    prio = Array.make (Stdlib.max 1 capacity) 0.;
    data = Array.make (Stdlib.max 1 capacity) None;
    len = 0;
  }

let size t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.prio in
  let prio = Array.make (2 * cap) 0. in
  let data = Array.make (2 * cap) None in
  Array.blit t.prio 0 prio 0 t.len;
  Array.blit t.data 0 data 0 t.len;
  t.prio <- prio;
  t.data <- data

let swap t i j =
  let p = t.prio.(i) in
  t.prio.(i) <- t.prio.(j);
  t.prio.(j) <- p;
  let d = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- d

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.prio.(l) < t.prio.(!smallest) then smallest := l;
  if r < t.len && t.prio.(r) < t.prio.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~priority v =
  if t.len = Array.length t.prio then grow t;
  t.prio.(t.len) <- priority;
  t.data.(t.len) <- Some v;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_min t =
  if t.len = 0 then None
  else begin
    let p = t.prio.(0) in
    let v = match t.data.(0) with Some v -> v | None -> assert false in
    t.len <- t.len - 1;
    t.prio.(0) <- t.prio.(t.len);
    t.data.(0) <- t.data.(t.len);
    t.data.(t.len) <- None;
    if t.len > 0 then sift_down t 0;
    Some (p, v)
  end

let peek_min t =
  if t.len = 0 then None
  else
    match t.data.(0) with Some v -> Some (t.prio.(0), v) | None -> assert false

let clear t =
  Array.fill t.data 0 t.len None;
  t.len <- 0
