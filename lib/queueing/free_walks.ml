type t = {
  rng : Rbb_prng.Rng.t;
  n : int;
  positions : int array;
  loads : int array;
  visited : Rbb_core.Bitset.t array;  (* empty array when not tracking *)
  mutable covered : int;
  mutable cover_round : int option;
  mutable round : int;
  mutable max_load : int;
}

let recount t =
  Array.fill t.loads 0 t.n 0;
  let best = ref 0 in
  Array.iter
    (fun p ->
      t.loads.(p) <- t.loads.(p) + 1;
      if t.loads.(p) > !best then best := t.loads.(p))
    t.positions;
  t.max_load <- !best

let create ~rng ~n ~m ~track_cover =
  if n <= 0 || m < 0 then invalid_arg "Free_walks.create: bad arguments";
  let positions = Array.init m (fun b -> b mod n) in
  let visited =
    if track_cover then Array.init m (fun _ -> Rbb_core.Bitset.create n)
    else [||]
  in
  let t =
    {
      rng;
      n;
      positions;
      loads = Array.make n 0;
      visited;
      covered = 0;
      cover_round = None;
      round = 0;
      max_load = 0;
    }
  in
  if track_cover then
    Array.iteri
      (fun b p ->
        Rbb_core.Bitset.add visited.(b) p;
        if Rbb_core.Bitset.is_full visited.(b) then t.covered <- t.covered + 1)
      positions;
  if track_cover && t.covered = m && m > 0 then t.cover_round <- Some 0;
  recount t;
  t

let step t =
  t.round <- t.round + 1;
  let m = Array.length t.positions in
  for b = 0 to m - 1 do
    let v = Rbb_prng.Rng.int_below t.rng t.n in
    t.positions.(b) <- v;
    if Array.length t.visited > 0 then begin
      let set = t.visited.(b) in
      if not (Rbb_core.Bitset.is_full set) then begin
        Rbb_core.Bitset.add set v;
        if Rbb_core.Bitset.is_full set then begin
          t.covered <- t.covered + 1;
          if t.covered = m && t.cover_round = None then
            t.cover_round <- Some t.round
        end
      end
    end
  done;
  recount t

let round t = t.round
let max_load t = t.max_load
let covered_walkers t = t.covered
let all_covered t = t.covered = Array.length t.positions
let cover_time t = t.cover_round

let run_until_covered t ~max_rounds =
  let rec go k =
    match t.cover_round with
    | Some r -> Some r
    | None -> if k >= max_rounds then None else (step t; go (k + 1))
  in
  go 0
