let utilization ~lambda ~mu =
  if not (lambda >= 0. && mu > 0. && lambda < mu) then
    invalid_arg "Mm1: need 0 <= lambda < mu";
  lambda /. mu

let queue_length_pmf ~lambda ~mu k =
  let rho = utilization ~lambda ~mu in
  if k < 0 then 0. else (1. -. rho) *. (rho ** float_of_int k)

let mean_queue_length ~lambda ~mu =
  let rho = utilization ~lambda ~mu in
  rho /. (1. -. rho)

let mean_sojourn_time ~lambda ~mu =
  ignore (utilization ~lambda ~mu);
  1. /. (mu -. lambda)

let expected_max_of_n ~lambda ~mu ~n =
  if n <= 0 then invalid_arg "Mm1.expected_max_of_n: n <= 0";
  let rho = utilization ~lambda ~mu in
  if rho = 0. then 0.
  else begin
    (* E[max] = sum_k P(max >= k) = sum_k 1 - (1 - rho^k)^n; terms decay
       geometrically, stop below 1e-12. *)
    let acc = ref 0. in
    let k = ref 1 in
    let continue = ref true in
    while !continue do
      let term = 1. -. ((1. -. (rho ** float_of_int !k)) ** float_of_int n) in
      acc := !acc +. term;
      incr k;
      if term < 1e-12 || !k > 1_000_000 then continue := false
    done;
    !acc
  end
