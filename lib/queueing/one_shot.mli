(** Classical one-shot balls-into-bins: throw [m] balls u.a.r. into [n]
    bins once.  Its max load is the famous [Θ(log n / log log n)]
    (for m = n), the baseline the paper's O(log n) repeated bound is
    compared against (experiment E12), and also the law of the
    configuration after any single round of reassigning all balls. *)

val max_load : Rbb_prng.Rng.t -> n:int -> m:int -> int
(** Max load of one throw of [m] balls into [n] bins. *)

val max_load_samples : Rbb_prng.Rng.t -> n:int -> m:int -> trials:int -> float array
(** [trials] independent max loads, as floats for direct summary. *)

val theoretical_max_load : int -> float
(** The leading-order [ln n / ln ln n] reference for [m = n] (meaningful
    for [n >= 3]). *)
