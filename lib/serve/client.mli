(** Blocking client for the [rbb serve] daemon.

    One {!t} wraps one connected Unix-domain socket and speaks
    {!Protocol} frames synchronously: send a request, block for the
    response.  Mixing request/response traffic with a subscription on
    the {e same} connection would interleave [event] frames with
    responses, so use a dedicated connection ({!subscribe} +
    {!next_event}) for streaming.

    Errors are [Failure]: a daemon that answers with an [error] frame,
    closes the connection, or (impossibly) sends corrupt frames. *)

type t

val connect :
  ?retry_for:float ->
  ?max_frame:int ->
  ?read_timeout_s:float ->
  socket:string ->
  unit ->
  t
(** Connect, retrying for up to [retry_for] seconds (default 5) while
    the socket does not exist yet or refuses — covers the daemon's
    startup window.  [read_timeout_s] (default 30) bounds every
    request/response wait: a daemon that accepts the request but never
    answers — wedged, not dead — raises [Failure] instead of hanging
    the client forever.  {!next_event} is exempt (an idle subscription
    legitimately waits arbitrarily long; a {e dead} daemon still cannot
    hang it, because the kernel delivers EOF).
    @raise Failure when the window closes.
    @raise Invalid_argument if [read_timeout_s <= 0]. *)

val close : t -> unit

(** {2 Request/response} *)

val request : t -> Protocol.request -> Protocol.response
(** Send one request, block for one response frame. *)

val ping : t -> unit

val submit : t -> Protocol.job_spec -> [ `Accepted of string | `Rejected of int ]
(** One admission attempt: the job id, or the daemon's retry-after hint
    in milliseconds.  No retry — open-loop load generators need the
    rejection, not a retry loop. *)

val submit_wait : ?attempts:int -> t -> Protocol.job_spec -> string
(** Closed-loop submit: on rejection, sleep the hinted backoff and try
    again, up to [attempts] (default 100) times.  Returns the job id.
    @raise Failure when every attempt is rejected. *)

val await_result : ?poll_s:float -> t -> id:string -> string
(** Poll (default every 20 ms) until the job's result document exists
    and return it verbatim — the exact bytes the daemon published.
    @raise Failure if the job failed or is unknown. *)

val stats : t -> (string * Rbb_sim.Jsonl.value) list

val metrics : t -> string
(** Scrape the daemon's Prometheus exposition (the [metrics.prom]
    bytes).  The body can exceed {!Protocol.default_max_frame} on a
    busy daemon — scraping connections should pass a roomier
    [max_frame] to {!connect}. *)

val reset_stats : t -> unit

val shutdown : t -> unit
(** Ask the daemon to drain and exit (acknowledged before the drain
    completes). *)

(** {2 Event streaming} *)

val subscribe : t -> ?id:string -> unit -> unit
(** Subscribe this connection to job lifecycle events — all jobs, or
    just [id]. *)

val next_event : t -> Protocol.event
(** Block for the next streamed event (skips any non-event frame). *)
