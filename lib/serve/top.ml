(* `rbb top`: a live terminal dashboard over one daemon.  Each frame is
   assembled from three sources — the `stats` request (admission
   plane), a `metrics` scrape (latency quantiles from the job
   histograms) and the state directory's events.ndjson tailed with
   Jsonl.tail (per-job progress) — and rendered as plain text, so the
   assembly and rendering stay pure and testable; only [run] owns a
   clock and a connection. *)

module Jsonl = Rbb_sim.Jsonl
module Prometheus = Rbb_obs.Prometheus

type job_row = { id : string; state : string; round : int }

type view = {
  queue_len : int;
  queue_capacity : int;
  workers : int;
  running : int;
  completed : int;
  failed : int;
  rejected : int;
  jobs_per_s : float;  (* completions per second over the last poll *)
  lambda_hat : float;
  utilization : float;
  sojourn_p50_s : float option;
  sojourn_p95_s : float option;
  sojourn_p99_s : float option;
  mmc_wait_s : float option;  (* M/M/c predicted mean wait at lambda-hat *)
  jobs : job_row list;  (* most recent first *)
}

let get_i fields key =
  match Jsonl.find_int fields key with Some v -> v | None -> 0

let get_f fields key =
  match Jsonl.find_float fields key with Some v -> v | None -> nan

(* Per-job progress, folded from lifecycle events (newest state wins). *)
type tracker = {
  rows : (string, job_row) Hashtbl.t;
  mutable order : string list;  (* most recently updated first *)
}

let tracker () = { rows = Hashtbl.create 32; order = [] }

let note_event tr (ev : Protocol.event) =
  let state =
    match ev.Protocol.ev with
    | "accepted" -> "queued"
    | "started" | "checkpoint" -> "running"
    | "done" -> "done"
    | "failed" -> "failed"
    | s -> s
  in
  let round =
    match Hashtbl.find_opt tr.rows ev.Protocol.id with
    | Some old -> Stdlib.max old.round ev.Protocol.round
    | None -> ev.Protocol.round
  in
  Hashtbl.replace tr.rows ev.Protocol.id { id = ev.Protocol.id; state; round };
  tr.order <- ev.Protocol.id :: List.filter (fun i -> i <> ev.Protocol.id) tr.order

let note_event_line tr line =
  match Protocol.response_of_json line with
  | Ok (Protocol.Event ev) -> note_event tr ev
  | Ok _ | Error _ -> ()

let jobs_of_tracker ?(limit = 8) tr =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | id :: rest -> (
        match Hashtbl.find_opt tr.rows id with
        | Some row -> row :: take (k - 1) rest
        | None -> take k rest)
  in
  take limit tr.order

let assemble ~stats ~metrics_body ~completed_delta ~dt ~jobs =
  let lambda_hat =
    let v = get_f stats "lambda_hat_per_s" in
    if Float.is_nan v then 0. else v
  in
  let workers = Stdlib.max 1 (get_i stats "workers") in
  let mu_hat =
    let mean_s = get_f stats "service_mean_s" in
    if Float.is_finite mean_s && mean_s > 0. then 1. /. mean_s else 0.
  in
  let utilization =
    if mu_hat > 0. then lambda_hat /. (float_of_int workers *. mu_hat) else 0.
  in
  let mmc_wait_s =
    if lambda_hat > 0. && mu_hat > 0. && utilization < 1. then
      Some
        (Rbb_queueing.Mmc.mean_waiting_time ~lambda:lambda_hat ~mu:mu_hat
           ~c:workers)
    else None
  in
  let q p =
    Prometheus.scraped_quantile
      ~labels:[ ("outcome", "ok") ]
      metrics_body "rbb_job_sojourn_seconds" p
  in
  {
    queue_len = get_i stats "queue_len";
    queue_capacity = get_i stats "queue_depth";
    workers;
    running =
      get_i stats "started" - get_i stats "completed" - get_i stats "failed";
    completed = get_i stats "completed";
    failed = get_i stats "failed";
    rejected = get_i stats "rejected";
    jobs_per_s =
      (if dt > 0. then float_of_int completed_delta /. dt else 0.);
    lambda_hat;
    utilization;
    sojourn_p50_s = q 0.5;
    sojourn_p95_s = q 0.95;
    sojourn_p99_s = q 0.99;
    mmc_wait_s;
    jobs;
  }

(* Rendering ---------------------------------------------------------- *)

let fmt_s = function
  | None -> "-"
  | Some v ->
      if Float.is_nan v then "-"
      else if v < 1e-3 then Printf.sprintf "%.0fus" (v *. 1e6)
      else if v < 1. then Printf.sprintf "%.1fms" (v *. 1e3)
      else Printf.sprintf "%.2fs" v

let bar ~width frac =
  let frac = Float.max 0. (Float.min 1. frac) in
  let full = int_of_float (Float.round (frac *. float_of_int width)) in
  String.make full '#' ^ String.make (width - full) '.'

let render v =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "rbb top - daemon";
  line "";
  line "queue   [%s] %d/%d" (bar ~width:20
    (if v.queue_capacity > 0 then
       float_of_int v.queue_len /. float_of_int v.queue_capacity
     else 0.))
    v.queue_len v.queue_capacity;
  line "load    [%s] rho=%.2f  lambda=%.2f/s" (bar ~width:20 v.utilization)
    v.utilization v.lambda_hat;
  line "workers %d  running %d  jobs/s %.2f" v.workers v.running v.jobs_per_s;
  line "totals  completed %d  failed %d  rejected %d" v.completed v.failed
    v.rejected;
  line "";
  line "sojourn p50 %s  p95 %s  p99 %s  (M/M/c wait %s)"
    (fmt_s v.sojourn_p50_s) (fmt_s v.sojourn_p95_s) (fmt_s v.sojourn_p99_s)
    (fmt_s v.mmc_wait_s);
  (match v.jobs with
  | [] -> ()
  | jobs ->
      line "";
      line "%-12s %-8s %s" "job" "state" "round";
      List.iter
        (fun r -> line "%-12s %-8s %d" r.id r.state r.round)
        jobs);
  Buffer.contents b

(* The live loop ------------------------------------------------------ *)

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let clear_screen = "\027[H\027[2J"

let run ?state_dir ?(interval_s = 1.0) ?(frames = 0) ?(once = false)
    ?(out = stdout) ~socket () =
  let client =
    Client.connect ~max_frame:(1 lsl 22) ~socket ()
  in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      let tr = tracker () in
      let tail =
        Option.map
          (fun dir -> Jsonl.tail (Filename.concat dir "events.ndjson"))
          state_dir
      in
      let poll_tail () =
        match tail with
        | None -> ()
        | Some tail ->
            List.iter (note_event_line tr) (Jsonl.tail_poll tail)
      in
      let prev_completed = ref 0 in
      let prev_t = ref (now_s ()) in
      let frame k =
        poll_tail ();
        let stats = Client.stats client in
        let metrics_body = Client.metrics client in
        let t = now_s () in
        let completed = get_i stats "completed" in
        let v =
          assemble ~stats ~metrics_body
            ~completed_delta:(if k = 0 then 0 else completed - !prev_completed)
            ~dt:(t -. !prev_t)
            ~jobs:(jobs_of_tracker tr)
        in
        prev_completed := completed;
        prev_t := t;
        if not once then output_string out clear_screen;
        output_string out (render v);
        flush out
      in
      if once then frame 0
      else begin
        let k = ref 0 in
        let stop = ref false in
        while not !stop do
          (match frame !k with
          | () -> ()
          | exception Failure _ when !k > 0 -> stop := true);
          Stdlib.incr k;
          if frames > 0 && !k >= frames then stop := true
          else if not !stop then Unix.sleepf interval_s
        done
      end)
