(* Open-loop Poisson load against a live daemon, then an M/M/c fit of
   what actually happened. *)

module Jsonl = Rbb_sim.Jsonl

type config = {
  socket : string;
  jobs : int;
  rate : float;
  rho_target : float;
  calibrate : int;
  spec : Protocol.job_spec;
  arrival_seed : int;
  workers : int;
}

type result = {
  offered : int;
  accepted : int;
  rejected : int;
  completed : int;
  failed : int;
  duration_s : float;
  throughput_per_s : float;
  calib_service_s : float;
  lambda_hat_per_s : float;
  mu_hat_per_s : float;
  utilization : float;
  wait_mean_s : float;
  sojourn_p50_s : float;
  sojourn_p99_s : float;
  mmc_wait_s : float;
  wait_rel_error : float;
}

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let get_f fields key =
  match Jsonl.find_float fields key with Some v -> v | None -> nan

let get_i fields key =
  match Jsonl.find_int fields key with Some v -> v | None -> 0

(* Each arrival gets a distinct seed and an exponentially-distributed
   round budget with mean [spec.rounds]: service times are then i.i.d.
   and approximately exponential — the M in M/M/c.  (With a fixed round
   count the system would be M/D/c, whose mean wait is half of M/M/c's,
   and the fit below would be comparing against the wrong model.) *)
let arrival_spec (cfg : config) ~size_rng k =
  let mean = float_of_int cfg.spec.Protocol.rounds in
  let rounds =
    match size_rng with
    | None -> cfg.spec.Protocol.rounds
    | Some rng ->
        max 1
          (int_of_float
             (Float.round (Rbb_prng.Sampler.exponential rng ~rate:(1. /. mean))))
  in
  { cfg.spec with Protocol.seed = cfg.spec.Protocol.seed + k; rounds }

let run cfg =
  if cfg.jobs < 1 then invalid_arg "Slam.run: jobs must be at least 1";
  if cfg.calibrate < 1 then
    invalid_arg "Slam.run: calibrate must be at least 1";
  if cfg.workers < 1 then invalid_arg "Slam.run: workers must be at least 1";
  if cfg.rate <= 0. && not (cfg.rho_target > 0.) then
    invalid_arg "Slam.run: need a positive rate or rho-target";
  let client = Client.connect ~socket:cfg.socket () in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      (* Phase 1: calibrate mean service time, closed loop. *)
      let calib_total = ref 0. in
      for k = 1 to cfg.calibrate do
        let t0 = now_s () in
        let id = Client.submit_wait client (arrival_spec cfg ~size_rng:None (-k)) in
        ignore (Client.await_result client ~id : string);
        calib_total := !calib_total +. (now_s () -. t0)
      done;
      let calib_service_s = !calib_total /. float_of_int cfg.calibrate in
      let rate =
        if cfg.rate > 0. then cfg.rate
        else
          cfg.rho_target *. float_of_int cfg.workers
          /. Float.max calib_service_s 1e-6
      in
      (* Phase 2: clean measurement window.  await_result returns as
         soon as the result file is visible, which can precede the
         worker's completion accounting (note_done) — resetting inside
         that window would let a stray calibration sample leak into the
         measured stats and leave the drain gate below one job short.
         Wait for every calibration job to be fully accounted first. *)
      let rec settle () =
        let fields = Client.stats client in
        if get_i fields "completed" + get_i fields "failed" < cfg.calibrate
        then begin
          Unix.sleepf 0.005;
          settle ()
        end
      in
      settle ();
      Client.reset_stats client;
      (* Phase 3: offer Poisson arrivals, open loop. *)
      let rng = Rbb_prng.Rng.create ~seed:(Int64.of_int cfg.arrival_seed) () in
      let accepted = ref 0 and rejected = ref 0 in
      let t_start = now_s () in
      let next = ref t_start in
      for j = 1 to cfg.jobs do
        let d = !next -. now_s () in
        if d > 0. then Unix.sleepf d;
        (match Client.submit client (arrival_spec cfg ~size_rng:(Some rng) j) with
        | `Accepted _ -> incr accepted
        | `Rejected _ -> incr rejected);
        next := !next +. Rbb_prng.Sampler.exponential rng ~rate
      done;
      (* Phase 4: drain — every accepted arrival must finish. *)
      let rec drain () =
        let fields = Client.stats client in
        let done_ = get_i fields "completed" + get_i fields "failed" in
        if done_ < !accepted then begin
          Unix.sleepf 0.02;
          drain ()
        end
        else fields
      in
      let fields = drain () in
      let duration_s = now_s () -. t_start in
      let completed = get_i fields "completed" in
      let failed = get_i fields "failed" in
      (* Phase 5: fit the measured window against M/M/c. *)
      let lambda_hat_per_s = get_f fields "lambda_hat_per_s" in
      let service_mean_s = get_f fields "service_mean_s" in
      let wait_mean_s =
        let w = get_f fields "wait_mean_s" in
        if Float.is_nan w then 0. else w
      in
      let mu_hat_per_s = 1. /. service_mean_s in
      let utilization =
        lambda_hat_per_s /. (float_of_int cfg.workers *. mu_hat_per_s)
      in
      let mmc_wait_s =
        if
          Float.is_finite lambda_hat_per_s
          && Float.is_finite mu_hat_per_s
          && lambda_hat_per_s > 0. && mu_hat_per_s > 0.
          && utilization < 1.
        then
          Rbb_queueing.Mmc.mean_waiting_time ~lambda:lambda_hat_per_s
            ~mu:mu_hat_per_s ~c:cfg.workers
        else infinity
      in
      let wait_rel_error =
        if Float.is_finite mmc_wait_s && mmc_wait_s > 0. then
          Float.abs (wait_mean_s -. mmc_wait_s) /. mmc_wait_s
        else nan
      in
      {
        offered = cfg.jobs;
        accepted = !accepted;
        rejected = !rejected;
        completed;
        failed;
        duration_s;
        throughput_per_s =
          (if duration_s > 0. then float_of_int completed /. duration_s
           else nan);
        calib_service_s;
        lambda_hat_per_s;
        mu_hat_per_s;
        utilization;
        wait_mean_s;
        sojourn_p50_s = get_f fields "sojourn_p50_s";
        sojourn_p99_s = get_f fields "sojourn_p99_s";
        mmc_wait_s;
        wait_rel_error;
      })

let to_fields r =
  [
    ("offered", Jsonl.Int r.offered);
    ("accepted", Jsonl.Int r.accepted);
    ("rejected", Jsonl.Int r.rejected);
    ("completed", Jsonl.Int r.completed);
    ("failed", Jsonl.Int r.failed);
    ("duration_s", Jsonl.Float r.duration_s);
    ("throughput_per_s", Jsonl.Float r.throughput_per_s);
    ("calib_service_s", Jsonl.Float r.calib_service_s);
    ("lambda_hat_per_s", Jsonl.Float r.lambda_hat_per_s);
    ("mu_hat_per_s", Jsonl.Float r.mu_hat_per_s);
    ("utilization", Jsonl.Float r.utilization);
    ("wait_mean_s", Jsonl.Float r.wait_mean_s);
    ("sojourn_p50_s", Jsonl.Float r.sojourn_p50_s);
    ("sojourn_p99_s", Jsonl.Float r.sojourn_p99_s);
    ("mmc_wait_s", Jsonl.Float r.mmc_wait_s);
    ("wait_rel_error", Jsonl.Float r.wait_rel_error);
  ]
