(* Bounded FIFO + measurement plane.  One mutex/condition pair guards
   everything: submits and stats reads come from the daemon's event
   loop, pops and completion notes from worker domains. *)

type entry = {
  id : string;
  spec : Protocol.job_spec;
  t_submit : int64;
  mutable t_start : int64;
}

type t = {
  clock : unit -> int64;
  depth : int;
  servers : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : entry Queue.t;
  mutable closed : bool;
  (* measurements, all under [lock] *)
  mutable arrivals : int;
  mutable rejected : int;
  mutable started : int;
  mutable completed : int;
  mutable failed : int;
  mutable first_arrival : int64;
  mutable last_arrival : int64;
  mutable wait_ns : float list;
  mutable service_ns : float list;
  mutable sojourn_ns : float list;
}

let create ?(clock = Monotonic_clock.now) ~depth ~servers () =
  if depth < 1 then invalid_arg "Admission.create: depth must be at least 1";
  if servers < 1 then
    invalid_arg "Admission.create: servers must be at least 1";
  {
    clock;
    depth;
    servers;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queue = Queue.create ();
    closed = false;
    arrivals = 0;
    rejected = 0;
    started = 0;
    completed = 0;
    failed = 0;
    first_arrival = 0L;
    last_arrival = 0L;
    wait_ns = [];
    service_ns = [];
    sojourn_ns = [];
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let note_arrival t now =
  t.arrivals <- t.arrivals + 1;
  if t.first_arrival = 0L then t.first_arrival <- now;
  t.last_arrival <- now

let mean l =
  match l with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)

(* Backoff hint: expected backlog drain time, from measured service
   times (100 ms per queued job before any measurement exists). *)
let retry_after_ms t =
  let per_job_ms =
    match t.service_ns with
    | [] -> 100.
    | l -> mean l /. 1e6
  in
  let backlog = Queue.length t.queue + 1 in
  max 1
    (int_of_float
       (Float.round (per_job_ms *. float_of_int backlog
                     /. float_of_int t.servers)))

let accepting t =
  locked t (fun () -> (not t.closed) && Queue.length t.queue < t.depth)

let try_reject t =
  locked t (fun () ->
      if t.closed || Queue.length t.queue >= t.depth then begin
        t.rejected <- t.rejected + 1;
        Some (retry_after_ms t)
      end
      else None)

let submit t ~id ~spec =
  locked t (fun () ->
      if t.closed || Queue.length t.queue >= t.depth then begin
        t.rejected <- t.rejected + 1;
        `Rejected (retry_after_ms t)
      end
      else begin
        let now = t.clock () in
        note_arrival t now;
        Queue.add { id; spec; t_submit = now; t_start = 0L } t.queue;
        Condition.signal t.nonempty;
        `Accepted (Queue.length t.queue)
      end)

let resubmit t ~id ~spec =
  locked t (fun () ->
      let now = t.clock () in
      note_arrival t now;
      Queue.add { id; spec; t_submit = now; t_start = 0L } t.queue;
      Condition.signal t.nonempty)

let pop t =
  locked t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.queue) then Some (Queue.take t.queue)
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let note_started t entry =
  locked t (fun () ->
      entry.t_start <- t.clock ();
      t.started <- t.started + 1;
      t.wait_ns <-
        Int64.to_float (Int64.sub entry.t_start entry.t_submit) :: t.wait_ns)

let note_done t entry ~ok =
  locked t (fun () ->
      let now = t.clock () in
      if ok then t.completed <- t.completed + 1 else t.failed <- t.failed + 1;
      t.service_ns <-
        Int64.to_float (Int64.sub now entry.t_start) :: t.service_ns;
      t.sojourn_ns <-
        Int64.to_float (Int64.sub now entry.t_submit) :: t.sojourn_ns)

let queue_length t = locked t (fun () -> Queue.length t.queue)

type stats = {
  arrivals : int;
  rejected : int;
  started : int;
  completed : int;
  failed : int;
  queue_len : int;
  first_arrival : int64;
  last_arrival : int64;
  wait_ns : float array;
  service_ns : float array;
  sojourn_ns : float array;
}

let stats t =
  locked t (fun () ->
      {
        arrivals = t.arrivals;
        rejected = t.rejected;
        started = t.started;
        completed = t.completed;
        failed = t.failed;
        queue_len = Queue.length t.queue;
        first_arrival = t.first_arrival;
        last_arrival = t.last_arrival;
        wait_ns = Array.of_list (List.rev t.wait_ns);
        service_ns = Array.of_list (List.rev t.service_ns);
        sojourn_ns = Array.of_list (List.rev t.sojourn_ns);
      })

let reset_stats t =
  locked t (fun () ->
      t.arrivals <- 0;
      t.rejected <- 0;
      t.started <- 0;
      t.completed <- 0;
      t.failed <- 0;
      t.first_arrival <- 0L;
      t.last_arrival <- 0L;
      t.wait_ns <- [];
      t.service_ns <- [];
      t.sojourn_ns <- [])
