(* The serve daemon: a select-driven event loop on the calling domain
   (socket I/O, admission decisions, event fan-out) plus a worker pool
   hosted on Parallel.map_domains (one long-lived task per worker).
   All cross-domain traffic funnels through Admission's queue and one
   daemon mutex guarding job states + the event queue. *)

module Jsonl = Rbb_sim.Jsonl
module Telemetry = Rbb_sim.Telemetry
module Fileio = Rbb_sim.Fileio
module Failpoint = Rbb_sim.Failpoint
module Registry = Rbb_obs.Registry
module Prometheus = Rbb_obs.Prometheus

type config = {
  socket : string;
  state_dir : string;
  workers : int;
  queue_depth : int;
  checkpoint_every : int;
  max_frame : int;
  log : out_channel option;
  telemetry_path : string option;
  io_failpoints : Failpoint.t;
}

let default_config ~socket ~state_dir =
  {
    socket;
    state_dir;
    workers = 1;
    queue_depth = 16;
    checkpoint_every = 256;
    max_frame = Protocol.default_max_frame;
    log = None;
    telemetry_path = None;
    io_failpoints = Failpoint.noop;
  }

type job_state =
  | Queued
  | Running of int
  | Finished of int
  | Failed of int * string  (** last checkpointed round, error detail *)

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;
  mutable outbuf : string;
  mutable discard : int;  (** oversized-frame payload bytes left to swallow *)
  mutable sub : string option option;
      (** [None] no subscription; [Some None] all jobs; [Some (Some id)] *)
  mutable close_after_flush : bool;
  mutable alive : bool;
}

type t = {
  cfg : config;
  admission : Admission.t;
  tel : Telemetry.t;
  registry : Registry.t;
  lock : Mutex.t;
      (** guards [states], [events], [workers_live], [deadlines] and the
          quarantine / deadline counters *)
  states : (string, job_state) Hashtbl.t;
  events : Protocol.event Queue.t;
  deadlines : (string, float * bool Atomic.t) Hashtbl.t;
      (** running jobs with a finite deadline: absolute monotonic expiry
          plus the cancel flag the owning worker polls each round *)
  mutable quarantined : int;
  mutable deadlined : int;
  mutable workers_live : int;
  (* event-loop-domain state: *)
  mutable draining : bool;
  mutable next_id : int;
  mutable conns : conn list;
  mutable completed_this_run : int;
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let set_state t id st = with_lock t (fun () -> Hashtbl.replace t.states id st)
let get_state t id = with_lock t (fun () -> Hashtbl.find_opt t.states id)
let push_event t ev = with_lock t (fun () -> Queue.add ev t.events)

let drain_events t =
  with_lock t (fun () ->
      let evs = List.of_seq (Queue.to_seq t.events) in
      Queue.clear t.events;
      evs)

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let logf t fmt =
  Printf.ksprintf
    (fun line ->
      match t.cfg.log with
      | None -> ()
      | Some oc ->
          output_string oc line;
          output_char oc '\n';
          flush oc)
    fmt

(* Workers ------------------------------------------------------------- *)

(* Per-job latency histograms, labeled by outcome.  These are the
   scrapable counterpart of Admission's raw sample arrays: slam's
   measured quantiles and the scraped ones must agree because both see
   the same entry timestamps (modulo the nanoseconds between
   note_done's clock read and ours). *)
let observe_job t entry ~outcome =
  let now = Monotonic_clock.now () in
  let sec a b = Int64.to_float (Int64.sub a b) /. 1e9 in
  let labels = [ ("outcome", outcome) ] in
  Registry.observe t.registry ~labels "rbb_job_wait_seconds"
    (sec entry.Admission.t_start entry.Admission.t_submit);
  Registry.observe t.registry ~labels "rbb_job_service_seconds"
    (sec now entry.Admission.t_start);
  Registry.observe t.registry ~labels "rbb_job_sojourn_seconds"
    (sec now entry.Admission.t_submit)

(* Register a running job with the deadline watchdog.  The returned
   [should_stop] closure is what Job.run polls each round; the watchdog
   (event-loop domain) flips the flag once the wall clock passes the
   absolute expiry, so enforcement needs no per-round clock reads in
   the worker and one source of truth decides lateness. *)
let arm_deadline t ~id spec =
  let deadline_s = spec.Protocol.deadline_s in
  if not (Float.is_finite deadline_s) then fun () -> None
  else begin
    let flag = Atomic.make false in
    with_lock t (fun () ->
        Hashtbl.replace t.deadlines id (now_s () +. deadline_s, flag));
    fun () ->
      if Atomic.get flag then
        Some
          (Printf.sprintf "deadline of %ss exceeded"
             (Jsonl.float_repr deadline_s))
      else None
  end

let disarm_deadline t ~id = with_lock t (fun () -> Hashtbl.remove t.deadlines id)

let fail_job t entry ~round ~detail ~outcome =
  let id = entry.Admission.id in
  Admission.note_done t.admission entry ~ok:false;
  observe_job t entry ~outcome;
  Telemetry.incr t.tel "serve.failed";
  (* Durable failure record: without it, scan would resubmit the job on
     every restart and it would re-fail forever. *)
  (try Job.write_failed ~state_dir:t.cfg.state_dir ~id ~round ~detail
   with Sys_error _ | Unix.Unix_error _ | Failpoint.Injected _ -> ());
  set_state t id (Failed (round, detail));
  push_event t { Protocol.ev = "failed"; id; round; detail }

let worker_loop t _w =
  let rec go () =
    match Admission.pop t.admission with
    | None -> ()
    | Some entry ->
        let id = entry.Admission.id in
        Admission.note_started t.admission entry;
        Telemetry.incr t.tel "serve.started";
        set_state t id (Running 0);
        push_event t { Protocol.ev = "started"; id; round = 0; detail = "" };
        let last_round = ref 0 in
        let should_stop = arm_deadline t ~id entry.Admission.spec in
        (match
           Job.run
             ~on_progress:(fun ~round ->
               last_round := round;
               set_state t id (Running round);
               push_event t
                 { Protocol.ev = "checkpoint"; id; round; detail = "" })
             ~on_quarantine:(fun ~path ~reason ->
               with_lock t (fun () -> t.quarantined <- t.quarantined + 1);
               Telemetry.incr t.tel "serve.quarantined";
               push_event t
                 {
                   Protocol.ev = "quarantined";
                   id;
                   round = 0;
                   detail = Printf.sprintf "%s: %s" path reason;
                 })
             ~on_save_error:(fun ~round:_ ~error:_ ->
               Telemetry.incr t.tel "serve.checkpoint_save_errors")
             ~should_stop ~state_dir:t.cfg.state_dir
             ~checkpoint_every:t.cfg.checkpoint_every ~id entry.Admission.spec
         with
        | (_ : (string * Jsonl.value) list) ->
            disarm_deadline t ~id;
            Admission.note_done t.admission entry ~ok:true;
            observe_job t entry ~outcome:"ok";
            Telemetry.incr t.tel "serve.completed";
            Telemetry.record_latency t.tel
              (Int64.sub (Monotonic_clock.now ()) entry.Admission.t_submit);
            let rounds = entry.Admission.spec.Protocol.rounds in
            set_state t id (Finished rounds);
            push_event t { Protocol.ev = "done"; id; round = rounds; detail = "" }
        | exception Job.Canceled { round; reason; _ } ->
            disarm_deadline t ~id;
            with_lock t (fun () -> t.deadlined <- t.deadlined + 1);
            Telemetry.incr t.tel "serve.deadlined";
            fail_job t entry ~round ~detail:reason ~outcome:"deadline"
        | exception e ->
            disarm_deadline t ~id;
            fail_job t entry ~round:!last_round
              ~detail:(Printexc.to_string e) ~outcome:"error");
        go ()
  in
  Fun.protect
    ~finally:(fun () ->
      with_lock t (fun () -> t.workers_live <- t.workers_live - 1))
    go

(* Stats --------------------------------------------------------------- *)

let mean arr = Array.fold_left ( +. ) 0. arr /. float_of_int (Array.length arr)

let sample_fields name arr =
  if Array.length arr = 0 then []
  else
    let q = Rbb_stats.Quantile.quantile in
    let sec ns = ns /. 1e9 in
    [
      (name ^ "_mean_s", Jsonl.Float (sec (mean arr)));
      (name ^ "_p50_s", Jsonl.Float (sec (q arr 0.5)));
      (name ^ "_p99_s", Jsonl.Float (sec (q arr 0.99)));
    ]

let stats_fields t =
  let s = Admission.stats t.admission in
  let window_ns =
    Int64.to_float (Int64.sub s.Admission.last_arrival s.Admission.first_arrival)
  in
  let rate_fields =
    if s.Admission.arrivals >= 2 && window_ns > 0. then
      [
        ("arrival_window_s", Jsonl.Float (window_ns /. 1e9));
        ( "lambda_hat_per_s",
          Jsonl.Float
            (float_of_int (s.Admission.arrivals - 1) /. (window_ns /. 1e9)) );
      ]
    else []
  in
  [
    ("workers", Jsonl.Int t.cfg.workers);
    ("queue_depth", Jsonl.Int t.cfg.queue_depth);
    ("queue_len", Jsonl.Int s.Admission.queue_len);
    ("arrivals", Jsonl.Int s.Admission.arrivals);
    ("rejected", Jsonl.Int s.Admission.rejected);
    ("started", Jsonl.Int s.Admission.started);
    ("completed", Jsonl.Int s.Admission.completed);
    ("failed", Jsonl.Int s.Admission.failed);
    ( "deadlined",
      Jsonl.Int (with_lock t (fun () -> t.deadlined)) );
    ( "quarantined",
      Jsonl.Int (with_lock t (fun () -> t.quarantined)) );
    ("io_faults_injected", Jsonl.Int (Fileio.injected_faults ()));
  ]
  @ rate_fields
  @ sample_fields "wait" s.Admission.wait_ns
  @ sample_fields "service" s.Admission.service_ns
  @ sample_fields "sojourn" s.Admission.sojourn_ns

(* Bring the registry's counters and gauges up to date with the
   admission plane and the lifetime telemetry before every exposition.
   Everything here is set-semantics, so refreshing is idempotent; the
   job histograms are the only push-style series and the workers feed
   those directly. *)
let refresh_registry t =
  let r = t.registry in
  let s = Admission.stats t.admission in
  Registry.set_gauge r "rbb_workers" (float_of_int t.cfg.workers);
  Registry.set_gauge r "rbb_queue_capacity" (float_of_int t.cfg.queue_depth);
  Registry.set_gauge r "rbb_queue_len" (float_of_int s.Admission.queue_len);
  Registry.set_gauge r "rbb_jobs_running"
    (float_of_int (s.Admission.started - s.Admission.completed - s.Admission.failed));
  Registry.set_counter r "rbb_jobs_accepted_total"
    (float_of_int s.Admission.arrivals);
  Registry.set_counter r "rbb_jobs_rejected_total"
    (float_of_int s.Admission.rejected);
  Registry.set_counter r "rbb_jobs_started_total"
    (float_of_int s.Admission.started);
  Registry.set_counter r "rbb_jobs_completed_total"
    (float_of_int s.Admission.completed);
  Registry.set_counter r "rbb_jobs_failed_total"
    (float_of_int s.Admission.failed);
  let deadlined, quarantined =
    with_lock t (fun () -> (t.deadlined, t.quarantined))
  in
  Registry.set_counter r "rbb_jobs_deadlined_total" (float_of_int deadlined);
  Registry.set_counter r "rbb_quarantined_total" (float_of_int quarantined);
  Registry.set_counter r "rbb_io_faults_injected_total"
    (float_of_int (Fileio.injected_faults ()));
  let window_ns =
    Int64.to_float (Int64.sub s.Admission.last_arrival s.Admission.first_arrival)
  in
  let lambda_hat =
    if s.Admission.arrivals >= 2 && window_ns > 0. then
      float_of_int (s.Admission.arrivals - 1) /. (window_ns /. 1e9)
    else 0.
  in
  Registry.set_gauge r "rbb_lambda_hat_per_s" lambda_hat;
  let mu_hat =
    if Array.length s.Admission.service_ns > 0 then
      1e9 /. mean s.Admission.service_ns
    else 0.
  in
  Registry.set_gauge r "rbb_mu_hat_per_s" mu_hat;
  Registry.set_gauge r "rbb_utilization"
    (if mu_hat > 0. then
       lambda_hat /. (float_of_int t.cfg.workers *. mu_hat)
     else 0.);
  Registry.import_telemetry r t.tel

let metrics_body t =
  refresh_registry t;
  Prometheus.render_registry t.registry

(* Requests ------------------------------------------------------------ *)

let read_result t id =
  let path = Job.result_path ~state_dir:t.cfg.state_dir ~id in
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> try Some (input_line ic) with End_of_file -> None)

let result_rounds body =
  match Jsonl.parse body with
  | None -> 0
  | Some fields -> Option.value ~default:0 (Jsonl.find_int fields "rounds")

let dispatch t conn req =
  match (req : Protocol.request) with
  | Ping -> [ Protocol.Pong ]
  | Submit spec ->
      if t.draining then
        [
          Protocol.Error_reply
            { code = "shutting_down"; message = "daemon is draining" };
        ]
      else begin
        (* The full-queue decision is one atomic re-check-and-count:
           workers pop concurrently, so a separate accepting() probe
           followed by a counting submit could land in a freed slot and
           enqueue a phantom job. *)
        match Admission.try_reject t.admission with
        | Some retry_after_ms ->
            Telemetry.incr t.tel "serve.rejected";
            [
              Protocol.Rejected
                { retry_after_ms; queue_depth = t.cfg.queue_depth };
            ]
        | None -> (
            (* Publish everything about the job — durable spec, state,
               lifecycle event — before the entry becomes poppable, so no
               worker can emit "started" ahead of our "accepted". *)
            let id = Job.fresh_id t.next_id in
            t.next_id <- t.next_id + 1;
            match Job.write_spec ~state_dir:t.cfg.state_dir ~id spec with
            | exception e ->
                (* The spec never became durable, so the job must not be
                   acknowledged: an ack is a promise the job survives a
                   crash.  The id is burned, nothing else happened. *)
                Telemetry.incr t.tel "serve.spec_write_errors";
                [
                  Protocol.Error_reply
                    {
                      code = "io_error";
                      message =
                        Printf.sprintf "could not persist job spec: %s"
                          (Printexc.to_string e);
                    };
                ]
            | () ->
            set_state t id Queued;
            Telemetry.incr t.tel "serve.accepted";
            push_event t { Protocol.ev = "accepted"; id; round = 0; detail = "" };
            match Admission.submit t.admission ~id ~spec with
            | `Accepted queue_depth -> [ Protocol.Accepted { id; queue_depth } ]
            | `Rejected _ ->
                (* Unreachable: try_reject saw room, only this thread
                   enqueues, pops only shrink the queue, and close is
                   issued from this thread too. *)
                assert false)
      end
  | Status id -> (
      match get_state t id with
      | Some Queued -> [ Protocol.Job_status { id; state = "queued"; round = 0 } ]
      | Some (Running round) ->
          [ Protocol.Job_status { id; state = "running"; round } ]
      | Some (Finished round) ->
          [ Protocol.Job_status { id; state = "done"; round } ]
      | Some (Failed (round, _)) ->
          [ Protocol.Job_status { id; state = "failed"; round } ]
      | None -> (
          (* Not in this daemon's memory — but a previous life may have
             finished (or failed) it: the result file and the failure
             marker are the durable records. *)
          match read_result t id with
          | Some body ->
              [
                Protocol.Job_status
                  { id; state = "done"; round = result_rounds body };
              ]
          | None -> (
              match Job.read_failed ~state_dir:t.cfg.state_dir ~id with
              | Some (round, _) ->
                  [ Protocol.Job_status { id; state = "failed"; round } ]
              | None ->
                  [
                    Protocol.Error_reply
                      {
                        code = "unknown_job";
                        message = Printf.sprintf "no job %S" id;
                      };
                  ])))
  | Result id -> (
      match read_result t id with
      | Some body -> [ Protocol.Job_result { id; body } ]
      | None -> (
          match get_state t id with
          | Some (Failed (_, detail)) ->
              [ Protocol.Error_reply { code = "job_failed"; message = detail } ]
          | Some Queued -> [ Protocol.Job_status { id; state = "queued"; round = 0 } ]
          | Some (Running round) ->
              [ Protocol.Job_status { id; state = "running"; round } ]
          | Some (Finished round) ->
              (* done-state seen but the result read raced the rename;
                 report status, the client will re-ask. *)
              [ Protocol.Job_status { id; state = "done"; round } ]
          | None -> (
              match Job.read_failed ~state_dir:t.cfg.state_dir ~id with
              | Some (_, detail) ->
                  [
                    Protocol.Error_reply
                      { code = "job_failed"; message = detail };
                  ]
              | None ->
                  [
                    Protocol.Error_reply
                      {
                        code = "unknown_job";
                        message = Printf.sprintf "no job %S" id;
                      };
                  ])))
  | Subscribe sel ->
      conn.sub <- Some sel;
      [ Protocol.Ok_reply ]
  | Stats -> [ Protocol.Stats_reply (stats_fields t) ]
  | Metrics -> [ Protocol.Metrics_reply { body = metrics_body t } ]
  | Reset_stats ->
      Admission.reset_stats t.admission;
      (* Job histograms must cover the same window as Admission's
         sample arrays, or a slam run's scraped quantiles would mix in
         settle-phase jobs that slam excluded from its own samples. *)
      Registry.reset_histograms t.registry;
      [ Protocol.Ok_reply ]
  | Shutdown ->
      if not t.draining then begin
        t.draining <- true;
        Admission.close t.admission;
        logf t "rbb serve: draining";
        Telemetry.incr t.tel "serve.shutdown_requests"
      end;
      [ Protocol.Ok_reply ]

let handle t conn payload =
  match Jsonl.parse payload with
  | None ->
      [
        Protocol.Error_reply
          {
            code = "bad_json";
            message = "payload is not a flat JSON object";
          };
      ]
  | Some _ -> (
      match Protocol.request_of_json payload with
      | Error message ->
          [ Protocol.Error_reply { code = "bad_request"; message } ]
      | Ok req -> dispatch t conn req)

(* Connections --------------------------------------------------------- *)

let send conn resp =
  conn.outbuf <-
    conn.outbuf ^ Protocol.encode_frame (Protocol.response_to_json resp)

let kill conn =
  if conn.alive then begin
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

let drop_prefix s n = String.sub s n (String.length s - n)

let rec process t conn =
  if conn.discard > 0 then begin
    let take = min conn.discard (String.length conn.inbuf) in
    conn.inbuf <- drop_prefix conn.inbuf take;
    conn.discard <- conn.discard - take;
    if conn.discard = 0 then process t conn
  end
  else if not conn.close_after_flush then
    match Protocol.extract ~max_frame:t.cfg.max_frame conn.inbuf with
    | Protocol.Need_more -> ()
    | Protocol.Frame { payload; consumed } ->
        conn.inbuf <- drop_prefix conn.inbuf consumed;
        List.iter (send conn) (handle t conn payload);
        process t conn
    | Protocol.Skip { consumed; discard; error } ->
        conn.inbuf <- drop_prefix conn.inbuf consumed;
        conn.discard <- discard;
        Telemetry.incr t.tel "serve.frames_oversized";
        send conn
          (Protocol.Error_reply { code = error.code; message = error.message });
        process t conn
    | Protocol.Corrupt error ->
        conn.inbuf <- "";
        Telemetry.incr t.tel "serve.frames_corrupt";
        send conn
          (Protocol.Error_reply { code = error.code; message = error.message });
        conn.close_after_flush <- true

let try_read t conn =
  let buf = Bytes.create 4096 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> kill conn
  | n ->
      conn.inbuf <- conn.inbuf ^ Bytes.sub_string buf 0 n;
      process t conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> kill conn

let try_write conn =
  if conn.alive && conn.outbuf <> "" then
    match
      Unix.write_substring conn.fd conn.outbuf 0 (String.length conn.outbuf)
    with
    | n ->
        conn.outbuf <- drop_prefix conn.outbuf n;
        if conn.outbuf = "" && conn.close_after_flush then kill conn
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> kill conn

let broadcast t ev =
  List.iter
    (fun conn ->
      match conn.sub with
      | Some sel
        when conn.alive
             && (sel = None || sel = Some ev.Protocol.id) ->
          send conn (Protocol.Event ev)
      | _ -> ())
    t.conns

(* Startup / shutdown -------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (EEXIST, _, _) -> ()
  end

let listen_socket path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.bind fd (ADDR_UNIX path);
  Unix.listen fd 16;
  Unix.set_nonblock fd;
  fd

let run cfg =
  if cfg.workers < 1 then invalid_arg "Daemon.run: workers must be at least 1";
  if cfg.queue_depth < 1 then
    invalid_arg "Daemon.run: queue-depth must be at least 1";
  if cfg.checkpoint_every < 1 then
    invalid_arg "Daemon.run: checkpoint-every must be at least 1";
  if cfg.max_frame < 1 then
    invalid_arg "Daemon.run: max-frame must be at least 1";
  mkdir_p cfg.state_dir;
  let lock =
    match
      Fileio.acquire_lock ~path:(Filename.concat cfg.state_dir "daemon.lock") ()
    with
    | Ok lock -> lock
    | Error e -> invalid_arg e
  in
  (* Arm the I/O fault plane only after the daemon owns its lock: chaos
     campaigns want startup to succeed and the *serving* daemon's
     writes to trip. *)
  Fileio.set_failpoints cfg.io_failpoints;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let registry = Registry.create () in
  List.iter
    (fun (name, text) -> Registry.help registry ~name text)
    [
      ("rbb_job_wait_seconds", "Queue wait per job, admission to start.");
      ("rbb_job_service_seconds", "Service time per job, start to done.");
      ("rbb_job_sojourn_seconds", "Total time in system per job.");
      ("rbb_queue_len", "Jobs waiting in the admission queue.");
      ("rbb_jobs_running", "Jobs currently being served.");
      ("rbb_utilization", "Estimated rho = lambda / (c * mu).");
      ("rbb_jobs_rejected_total", "Jobs turned away by admission control.");
    ];
  let t =
    {
      cfg;
      admission = Admission.create ~depth:cfg.queue_depth ~servers:cfg.workers ();
      tel = Telemetry.create ();
      registry;
      lock = Mutex.create ();
      states = Hashtbl.create 64;
      events = Queue.create ();
      deadlines = Hashtbl.create 8;
      quarantined = 0;
      deadlined = 0;
      workers_live = cfg.workers;
      draining = false;
      next_id = 1;
      conns = [];
      completed_this_run = 0;
    }
  in
  logf t "rbb serve: state dir %s" cfg.state_dir;
  (* Crash recovery: anything with a spec but no result was admitted by
     a previous life of this daemon and must be finished. *)
  let pending, next =
    Job.scan
      ~on_quarantine:(fun ~id ~reason ->
        t.quarantined <- t.quarantined + 1;
        Telemetry.incr t.tel "serve.quarantined";
        set_state t id (Failed (0, reason));
        push_event t
          { Protocol.ev = "quarantined"; id; round = 0; detail = reason };
        logf t "rbb serve: quarantined spec of %s (%s)" id reason)
      ~state_dir:cfg.state_dir ()
  in
  t.next_id <- next;
  List.iter
    (fun (id, spec) ->
      set_state t id Queued;
      push_event t { Protocol.ev = "accepted"; id; round = 0; detail = "resumed" };
      Telemetry.incr t.tel "serve.resumed";
      Admission.resubmit t.admission ~id ~spec)
    pending;
  if pending <> [] then
    logf t "rbb serve: resumed %d pending job(s)" (List.length pending);
  let events_oc =
    open_out_gen
      [ Open_append; Open_creat; Open_wronly ]
      0o644
      (Filename.concat cfg.state_dir "events.ndjson")
  in
  let listen_fd = listen_socket cfg.socket in
  logf t "rbb serve: listening on %s (workers=%d queue-depth=%d)" cfg.socket
    cfg.workers cfg.queue_depth;
  let pool =
    Domain.spawn (fun () ->
        ignore
          (Rbb_sim.Parallel.map_domains ~domains:cfg.workers ~tasks:cfg.workers
             (worker_loop t)))
  in
  let workers_done () = with_lock t (fun () -> t.workers_live = 0) in
  let accept_new () =
    let rec go () =
      match Unix.accept listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          t.conns <-
            {
              fd;
              inbuf = "";
              outbuf = "";
              discard = 0;
              sub = None;
              close_after_flush = false;
              alive = true;
            }
            :: t.conns;
          go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    in
    go ()
  in
  let pump_events () =
    match drain_events t with
    | [] -> ()
    | evs ->
        List.iter
          (fun ev ->
            if ev.Protocol.ev = "done" then
              t.completed_this_run <- t.completed_this_run + 1;
            output_string events_oc
              (Protocol.response_to_json (Protocol.Event ev));
            output_char events_oc '\n';
            broadcast t ev)
          evs;
        flush events_oc
  in
  let prom_path = Filename.concat cfg.state_dir "metrics.prom" in
  let write_prom () =
    refresh_registry t;
    Prometheus.write_file t.registry ~path:prom_path
  in
  (* Deadline watchdog: flip the cancel flag of every running job whose
     wall-clock budget has expired.  The owning worker observes the flag
     at its next round boundary and fails the job through the durable
     .failed machinery. *)
  let check_deadlines () =
    let now = now_s () in
    with_lock t (fun () ->
        Hashtbl.iter
          (fun _id (expiry, flag) -> if now >= expiry then Atomic.set flag true)
          t.deadlines)
  in
  let next_prom = ref (now_s ()) in
  let flush_spins = ref 0 in
  let rec loop () =
    pump_events ();
    check_deadlines ();
    if now_s () >= !next_prom then begin
      (* The exposition write goes through the faultable I/O shim; an
         injected (or real) failure there must not kill the daemon —
         metrics are best-effort, jobs are not. *)
      (try write_prom ()
       with Sys_error _ | Unix.Unix_error _ | Failpoint.Injected _ -> ());
      Fileio.refresh_lock lock;
      next_prom := now_s () +. 1.
    end;
    t.conns <- List.filter (fun c -> c.alive) t.conns;
    let finished =
      t.draining && workers_done ()
      && with_lock t (fun () -> Queue.is_empty t.events)
    in
    let all_flushed = List.for_all (fun c -> c.outbuf = "") t.conns in
    if finished && (all_flushed || !flush_spins > 40) then ()
    else begin
      if finished then incr flush_spins;
      let reads =
        if t.draining then List.map (fun c -> c.fd) t.conns
        else listen_fd :: List.map (fun c -> c.fd) t.conns
      in
      let writes =
        List.filter_map
          (fun c -> if c.outbuf <> "" then Some c.fd else None)
          t.conns
      in
      let rs, ws, _ =
        try Unix.select reads writes [] 0.05
        with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      if List.mem listen_fd rs then accept_new ();
      List.iter
        (fun c -> if c.alive && List.mem c.fd rs then try_read t c)
        t.conns;
      List.iter
        (fun c -> if c.alive && List.mem c.fd ws then try_write c)
        t.conns;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter kill t.conns;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
      close_out_noerr events_oc;
      (try write_prom ()
       with Sys_error _ | Unix.Unix_error _ | Failpoint.Injected _ -> ());
      (match cfg.telemetry_path with
      | Some path -> (
          try Telemetry.write_json t.tel ~path
          with Sys_error _ | Unix.Unix_error _ | Failpoint.Injected _ -> ())
      | None -> ());
      Fileio.release_lock lock)
    (fun () ->
      loop ();
      Domain.join pool;
      logf t "rbb serve: shutdown (%d job(s) completed this run)"
        t.completed_this_run)
