(* One job = one seeded simulation, checkpointed as it runs so that a
   daemon death at any instant loses at most [checkpoint_every] rounds
   of work — and none of the result's bytes. *)

open Rbb_core
module Jsonl = Rbb_sim.Jsonl
module Checkpoint = Rbb_sim.Checkpoint
module Telemetry = Rbb_sim.Telemetry

let spec_path ~state_dir ~id = Filename.concat state_dir (id ^ ".job")

let checkpoint_path ~state_dir ~id = Filename.concat state_dir (id ^ ".ckpt")

let result_path ~state_dir ~id = Filename.concat state_dir (id ^ ".result")

let failed_path ~state_dir ~id = Filename.concat state_dir (id ^ ".failed")

let quarantine_dir ~state_dir = Filename.concat state_dir "quarantine"

(* Corrupt artifacts are moved aside, not deleted: the quarantined file
   is the evidence (operators diff it against a clean snapshot; the
   chaos harness asserts it exists).  The move is a same-filesystem
   rename; a numbered suffix keeps repeat offenders from clobbering
   each other. *)
let quarantine_file ~state_dir ~path =
  let dir = quarantine_dir ~state_dir in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  let base = Filename.basename path in
  let rec attempt k =
    if k > 999 then None
    else
      let dest =
        Filename.concat dir
          (if k = 0 then base else Printf.sprintf "%s.%d" base k)
      in
      if Sys.file_exists dest then attempt (k + 1)
      else
        match Sys.rename path dest with
        | () -> Some dest
        | exception Sys_error _ -> None
  in
  attempt 0

exception Canceled of { id : string; round : int; reason : string }

let () =
  Printexc.register_printer (function
    | Canceled { id; round; reason } ->
        Some (Printf.sprintf "Job.Canceled(%s, round=%d, %s)" id round reason)
    | _ -> None)

let spec_schema = "rbb.job-spec/1"
let result_schema = "rbb.job-result/1"
let failed_schema = "rbb.job-failed/1"

let write_spec ~state_dir ~id spec =
  let line =
    Jsonl.obj
      (("schema", Jsonl.String spec_schema)
       :: ("id", Jsonl.String id)
       :: ("n", Jsonl.Int spec.Protocol.n)
       :: (if spec.Protocol.m <> spec.Protocol.n then
             [ ("m", Jsonl.Int spec.Protocol.m) ]
           else [])
      @ (if Float.is_finite spec.Protocol.deadline_s then
           [ ("deadline_s", Jsonl.Float spec.Protocol.deadline_s) ]
         else [])
      @ ("rounds", Jsonl.Int spec.Protocol.rounds)
        :: ("seed", Jsonl.Int spec.Protocol.seed)
        :: ("init", Jsonl.String spec.Protocol.init)
        :: [ ("engine", Jsonl.String (Protocol.engine_name spec.Protocol.engine)) ])
  in
  Rbb_sim.Fileio.write_atomic ~path:(spec_path ~state_dir ~id) (fun oc ->
      output_string oc line;
      output_char oc '\n')

let write_failed ~state_dir ~id ~round ~detail =
  let line =
    Jsonl.obj
      [
        ("schema", Jsonl.String failed_schema);
        ("id", Jsonl.String id);
        ("round", Jsonl.Int round);
        ("error", Jsonl.String detail);
      ]
  in
  Rbb_sim.Fileio.write_atomic ~path:(failed_path ~state_dir ~id) (fun oc ->
      output_string oc line;
      output_char oc '\n')

let read_failed ~state_dir ~id =
  match open_in (failed_path ~state_dir ~id) with
  | exception Sys_error _ -> None
  | ic -> (
      let line =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> try Some (input_line ic) with End_of_file -> None)
      in
      (* The marker's presence is the fact; its fields are best-effort
         detail, so an unreadable body still reads as a failure. *)
      match Option.bind line Jsonl.parse with
      | None -> Some (0, "failed (unreadable failure marker)")
      | Some fields ->
          Some
            ( Option.value ~default:0 (Jsonl.find_int fields "round"),
              Option.value ~default:"" (Jsonl.find_string fields "error") ))

let load_spec ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic -> (
      let line =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> try Some (input_line ic) with End_of_file -> None)
      in
      match line with
      | None -> Error (Printf.sprintf "%s: empty spec file" path)
      | Some line -> (
          match Jsonl.parse line with
          | None -> Error (Printf.sprintf "%s: unparseable spec" path)
          | Some fields -> (
              match
                ( Jsonl.find_string fields "schema",
                  Jsonl.find_string fields "id",
                  Jsonl.find_int fields "n",
                  Jsonl.find_int fields "rounds",
                  Jsonl.find_int fields "seed",
                  Jsonl.find_string fields "init",
                  Jsonl.find_string fields "engine" )
              with
              | ( Some schema,
                  Some id,
                  Some n,
                  Some rounds,
                  Some seed,
                  Some init,
                  Some engine )
                when schema = spec_schema -> (
                  (* "m" and "deadline_s" are optional in the spec file,
                     exactly as on the wire: absent means m = n and no
                     deadline. *)
                  let m = Option.value ~default:n (Jsonl.find_int fields "m") in
                  let deadline_s =
                    Option.value ~default:infinity
                      (Jsonl.find_float fields "deadline_s")
                  in
                  let mk engine =
                    { Protocol.n; m; rounds; seed; init; engine; deadline_s }
                  in
                  match (engine, Protocol.validate_spec (mk Balls)) with
                  | "balls", Ok () -> Ok (id, mk Protocol.Balls)
                  | "counts", Ok () -> Ok (id, mk Protocol.Counts)
                  | _, Error e -> Error (Printf.sprintf "%s: %s" path e)
                  | e, Ok () ->
                      Error (Printf.sprintf "%s: unknown engine %S" path e))
              | _ -> Error (Printf.sprintf "%s: not an %s document" path spec_schema))))

(* Ids are "job-%06d"; the sequence number drives fresh allocation. *)

let fresh_id k = Printf.sprintf "job-%06d" k

let id_seq id =
  match String.length id > 4 && String.sub id 0 4 = "job-" with
  | true -> int_of_string_opt (String.sub id 4 (String.length id - 4))
  | false -> None

let scan ?(on_quarantine = fun ~id:_ ~reason:_ -> ()) ~state_dir () =
  let entries = try Sys.readdir state_dir with Sys_error _ -> [||] in
  let pending = ref [] in
  let next = ref 1 in
  (* The sequence advances past every id with *any* artifact — spec,
     result or failure marker.  A quarantined spec leaves only its
     .failed marker behind, and reissuing that id to a fresh submit
     would collide the new job with the old failure record. *)
  let advance id =
    match id_seq id with
    | Some k when k >= !next -> next := k + 1
    | _ -> ()
  in
  Array.iter
    (fun name ->
      List.iter
        (fun suffix ->
          if Filename.check_suffix name suffix then
            advance (Filename.chop_suffix name suffix))
        [ ".result"; ".failed" ];
      if Filename.check_suffix name ".job" then begin
        let id = Filename.chop_suffix name ".job" in
        advance id;
        if
          (not (Sys.file_exists (result_path ~state_dir ~id)))
          && not (Sys.file_exists (failed_path ~state_dir ~id))
        then
          let quarantine reason =
            (* An acknowledged job whose durable spec went bad must stay
               accounted: the spec moves to quarantine/ as evidence and
               a durable .failed marker records the loss, so the job
               reads as permanently failed — never as silently absent.
               Both writes are best-effort: if they fail too (injected
               I/O faults), the next restart simply re-encounters the
               bad spec. *)
            ignore
              (quarantine_file ~state_dir
                 ~path:(Filename.concat state_dir name));
            (try write_failed ~state_dir ~id ~round:0 ~detail:reason
             with _ -> ());
            on_quarantine ~id ~reason
          in
          match load_spec ~path:(Filename.concat state_dir name) with
          | Ok (id', spec) when id' = id -> pending := (id, spec) :: !pending
          | Ok (id', _) ->
              quarantine
                (Printf.sprintf "spec corrupted: file %s names id %s" name id')
          | Error e -> quarantine (Printf.sprintf "spec corrupted: %s" e)
      end)
    entries;
  ( List.sort (fun (a, _) (b, _) -> String.compare a b) !pending,
    !next )

(* Result rendering: every field below is a pure function of the final
   engine state + the spec, so interrupted-and-resumed runs publish the
   same bytes.  Loads travel as an FNV-1a fingerprint — enough for a
   byte-exact identity check without shipping n integers. *)

let fnv64 loads =
  let h = ref 0xcbf29ce484222325L in
  Array.iter
    (fun load ->
      h := Int64.logxor !h (Int64.of_int load);
      h := Int64.mul !h 0x100000001b3L)
    loads;
  Printf.sprintf "%016Lx" !h

let result_fields ~id ~(spec : Protocol.job_spec) ~round ~config ~telemetry =
  [
    ("schema", Jsonl.String result_schema);
    ("id", Jsonl.String id);
    ("engine", Jsonl.String (Protocol.engine_name spec.engine));
    ("n", Jsonl.Int spec.n);
    ("rounds", Jsonl.Int round);
    ("seed", Jsonl.Int spec.seed);
    ("init", Jsonl.String spec.init);
    ("max_load", Jsonl.Int (Config.max_load config));
    ("empty_bins", Jsonl.Int (Config.empty_bins config));
    ("balls", Jsonl.Int (Config.balls config));
    ("loads_fnv64", Jsonl.String (fnv64 (Config.loads config)));
    (* The embedded snapshot is the counters-only telemetry document:
       counters are deterministic per seed and restored across resume,
       so this field — like everything above — is byte-stable between a
       resumed job and one that never crashed.  Timers/latency are
       wall-clock and deliberately excluded. *)
    ("telemetry", Jsonl.String (Telemetry.counters_json telemetry));
  ]
  @ List.map
      (fun (k, v) -> ("c." ^ k, Jsonl.Int v))
      (Telemetry.counters telemetry)

let result_body fields = Jsonl.obj fields

let run ?(on_progress = fun ~round:_ -> ())
    ?(on_quarantine = fun ~path:_ ~reason:_ -> ())
    ?(on_save_error = fun ~round:_ ~error:_ -> ())
    ?(should_stop = fun () -> None) ~state_dir ~checkpoint_every ~id
    (spec : Protocol.job_spec) =
  if checkpoint_every < 1 then
    invalid_arg "Job.run: checkpoint_every must be at least 1";
  (match Protocol.validate_spec spec with
  | Ok () -> ()
  | Error e -> invalid_arg ("Job.run: " ^ e));
  let ckpt = checkpoint_path ~state_dir ~id in
  let tel = Telemetry.create () in
  let probe = Telemetry.probe tel in
  (* The quarantine-and-fall-back chain: a checkpoint that fails to
     load (CRC mismatch, truncation, schema damage) or belongs to the
     wrong engine family is moved to quarantine/ and the job restarts
     from its durable spec.  Every result field is a deterministic
     function of (final state, spec), so the fresh run publishes bytes
     identical to what the poisoned resume would have produced — the
     corruption costs recomputation, never correctness. *)
  let quarantined reason =
    let dest = quarantine_file ~state_dir ~path:ckpt in
    (* If the move itself failed, still never resume from poison. *)
    if Sys.file_exists ckpt then (try Sys.remove ckpt with Sys_error _ -> ());
    on_quarantine
      ~path:(Option.value dest ~default:(quarantine_dir ~state_dir))
      ~reason;
    None
  in
  let snap =
    if Sys.file_exists ckpt then
      match Checkpoint.load ~path:ckpt () with
      | Ok snap ->
          let kind_matches =
            match (snap.Checkpoint.kind, spec.engine) with
            | Checkpoint.Balls, Protocol.Balls
            | Checkpoint.Counts, Protocol.Counts ->
                true
            | _ -> false
          in
          if kind_matches then begin
            Checkpoint.restore_counters tel snap;
            Some snap
          end
          else
            quarantined "checkpoint engine kind does not match the spec"
      | Error e -> quarantined e
    else None
  in
  let fresh () =
    let rng = Rbb_prng.Rng.create ~seed:(Int64.of_int spec.seed) () in
    let init =
      match spec.init with
      | "uniform" -> Config.uniform ~n:spec.n (* validate_spec: m = n *)
      | "balanced" -> Config.balanced ~n:spec.n ~m:spec.m
      | "pile" -> Config.all_in_one ~n:spec.n ~m:spec.m ()
      | "random" -> Config.random rng ~n:spec.n ~m:spec.m
      | _ -> assert false (* validated above *)
    in
    (rng, init)
  in
  (* One driving loop for both engine families, mirroring the CLI's. *)
  let start_round, step, config, capture =
    match spec.engine with
    | Protocol.Balls ->
        let p =
          match snap with
          | Some s -> Checkpoint.to_process s
          | None ->
              let rng, init = fresh () in
              Process.create ~rng ~init ()
        in
        ( Process.round p,
          (fun () -> Process.run ~probe p ~rounds:1),
          (fun () -> Process.config p),
          fun () -> Checkpoint.capture_process ~telemetry:tel p )
    | Protocol.Counts ->
        let p =
          match snap with
          | Some s -> Checkpoint.to_counts s
          | None ->
              let rng, init = fresh () in
              Counts_process.create ~rng ~init ()
        in
        ( Counts_process.round p,
          (fun () -> Counts_process.run ~probe p ~rounds:1),
          (fun () -> Counts_process.config p),
          fun () -> Checkpoint.capture_counts ~telemetry:tel p )
  in
  for r = start_round + 1 to spec.rounds do
    (match should_stop () with
    | Some reason -> raise (Canceled { id; round = r - 1; reason })
    | None -> ());
    step ();
    if r mod checkpoint_every = 0 && r < spec.rounds then begin
      (* A failed checkpoint save (disk full, injected I/O fault) is
         degradation, not death: the previous snapshot is still whole
         on disk — atomic publication — so the job keeps computing and
         merely risks more recomputation after a crash. *)
      match Checkpoint.save ~path:ckpt (capture ()) with
      | () -> on_progress ~round:r
      | exception e -> on_save_error ~round:r ~error:(Printexc.to_string e)
    end
  done;
  let fields =
    result_fields ~id ~spec ~round:spec.rounds ~config:(config ())
      ~telemetry:tel
  in
  (* The result is the one artifact that must land: retry transient
     write failures (under probabilistic fault injection each retry
     draws fresh luck) before letting the exception fail the job. *)
  let rec publish attempt =
    match
      Rbb_sim.Fileio.write_atomic ~path:(result_path ~state_dir ~id) (fun oc ->
          output_string oc (result_body fields);
          output_char oc '\n')
    with
    | () -> ()
    | exception e ->
        if attempt >= 5 then raise e
        else begin
          Unix.sleepf 0.002;
          publish (attempt + 1)
        end
  in
  publish 0;
  (* The checkpoint has served its purpose; the result now marks the
     job done (and a stale checkpoint must not shadow a future job that
     reuses the id in a wiped directory). *)
  (try Sys.remove ckpt with Sys_error _ -> ());
  fields
