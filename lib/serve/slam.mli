(** Open-loop load harness with an M/M/c sanity check.

    [rbb slam] drives a running daemon the way queueing theory is
    phrased: Poisson arrivals (exponential inter-arrival gaps from
    {!Rbb_prng.Sampler.exponential}) of statistically identical jobs,
    {e open loop} — the generator never waits for a response before the
    next arrival, so rejections are real measurements, not back-pressure
    artefacts.  The run:

    + {e calibrate}: a few sequential closed-loop jobs estimate the mean
      service time, from which the target arrival rate is derived when
      the caller asks for a utilization (`rho`) rather than a rate;
    + {e reset} the daemon's measurement window;
    + {e offer} [jobs] Poisson arrivals at rate [lambda];
    + {e drain}: poll until every accepted job finished;
    + {e fit}: compare the measured mean waiting time against
      {!Rbb_queueing.Mmc.mean_waiting_time} at the {e measured} arrival
      and service rates — a live experimental check that the daemon's
      admission queue behaves like the M/M/c model predicts. *)

type config = {
  socket : string;
  jobs : int;  (** arrivals to offer *)
  rate : float;  (** target lambda, jobs/s; [<= 0.] derives from [rho_target] *)
  rho_target : float;  (** used only when [rate <= 0.] *)
  calibrate : int;  (** sequential calibration jobs (at least 1) *)
  spec : Protocol.job_spec;
      (** template; each arrival gets a distinct seed and an
          exponentially-distributed round budget with mean [rounds],
          making service times approximately exponential (the M in
          M/M/c) *)
  arrival_seed : int;  (** PRNG seed for the Poisson gaps *)
  workers : int;  (** the daemon's worker count — the model's [c] *)
}

type result = {
  offered : int;
  accepted : int;
  rejected : int;
  completed : int;
  failed : int;
  duration_s : float;  (** first arrival to drain complete *)
  throughput_per_s : float;  (** completed / duration *)
  calib_service_s : float;  (** calibration mean service time *)
  lambda_hat_per_s : float;  (** measured arrival rate *)
  mu_hat_per_s : float;  (** measured service rate, per server *)
  utilization : float;  (** lambda / (c mu), measured *)
  wait_mean_s : float;  (** measured mean time in queue *)
  sojourn_p50_s : float;
  sojourn_p99_s : float;
  mmc_wait_s : float;  (** M/M/c predicted mean wait at measured rates *)
  wait_rel_error : float;
      (** |measured - predicted| / predicted; [nan] when the prediction
          is degenerate (unstable or zero) *)
}

val run : config -> result
(** Drive the daemon at [socket] through the five phases above.
    @raise Invalid_argument on nonsensical config; [Failure] when the
    daemon misbehaves. *)

val to_fields : result -> (string * Rbb_sim.Jsonl.value) list
(** Flat JSON rendering (for reports and [BENCH_serve.json]). *)
