(* rbb.job/1 codec.  Everything here is a pure function of its input:
   encoding goes through Jsonl.obj (sorted keys, fixed number formats)
   so a fixed value always serialises to the same bytes, and decoding
   returns structured errors instead of raising so a server can answer
   malformed traffic and keep the connection. *)

module Jsonl = Rbb_sim.Jsonl

let schema = "rbb.job/1"
let default_max_frame = 65536

type engine = Balls | Counts

type job_spec = {
  n : int;
  m : int;  (* ball count; m = n is the paper's (and the wire) default *)
  rounds : int;
  seed : int;
  init : string;
  engine : engine;
  deadline_s : float;
      (* wall-clock budget from dispatch; infinity (the wire default)
         means the job may run forever *)
}

let engine_name = function Balls -> "balls" | Counts -> "counts"

let engine_of_name = function
  | "balls" -> Some Balls
  | "counts" -> Some Counts
  | _ -> None

let validate_spec spec =
  if spec.n < 1 then Error "job spec: n must be at least 1"
  else if spec.m < 0 then Error "job spec: m must be nonnegative"
  else if spec.rounds < 0 then Error "job spec: rounds must be nonnegative"
  else if Float.is_nan spec.deadline_s || spec.deadline_s <= 0. then
    Error "job spec: deadline_s must be a positive number of seconds"
  else
    match spec.init with
    | "uniform" when spec.m <> spec.n ->
        Error "job spec: init \"uniform\" requires m = n (use \"balanced\")"
    | "uniform" | "balanced" | "pile" | "random" -> Ok ()
    | s -> Error (Printf.sprintf "job spec: unknown init %S" s)

type request =
  | Ping
  | Submit of job_spec
  | Status of string
  | Result of string
  | Subscribe of string option
  | Stats
  | Metrics
  | Reset_stats
  | Shutdown

type event = { ev : string; id : string; round : int; detail : string }

type response =
  | Pong
  | Ok_reply
  | Accepted of { id : string; queue_depth : int }
  | Rejected of { retry_after_ms : int; queue_depth : int }
  | Job_status of { id : string; state : string; round : int }
  | Job_result of { id : string; body : string }
  | Stats_reply of (string * Jsonl.value) list
  | Metrics_reply of { body : string }
  | Event of event
  | Error_reply of { code : string; message : string }

(* Encoding ----------------------------------------------------------- *)

let obj ty fields =
  Jsonl.obj
    (("schema", Jsonl.String schema) :: ("type", Jsonl.String ty) :: fields)

(* "m" travels only when it differs from n, and "deadline_s" only when
   finite: old decoders keep working and every default-valued spec
   encodes to its historical bytes. *)
let spec_fields spec =
  ("n", Jsonl.Int spec.n)
  :: (if spec.m <> spec.n then [ ("m", Jsonl.Int spec.m) ] else [])
  @ (if Float.is_finite spec.deadline_s then
       [ ("deadline_s", Jsonl.Float spec.deadline_s) ]
     else [])
  @ [
      ("rounds", Jsonl.Int spec.rounds);
      ("seed", Jsonl.Int spec.seed);
      ("init", Jsonl.String spec.init);
      ("engine", Jsonl.String (engine_name spec.engine));
    ]

let request_to_json = function
  | Ping -> obj "ping" []
  | Submit spec -> obj "submit" (spec_fields spec)
  | Status id -> obj "status" [ ("id", Jsonl.String id) ]
  | Result id -> obj "result" [ ("id", Jsonl.String id) ]
  | Subscribe None -> obj "subscribe" []
  | Subscribe (Some id) -> obj "subscribe" [ ("id", Jsonl.String id) ]
  | Stats -> obj "stats" []
  | Metrics -> obj "metrics" []
  | Reset_stats -> obj "reset-stats" []
  | Shutdown -> obj "shutdown" []

let response_to_json = function
  | Pong -> obj "pong" []
  | Ok_reply -> obj "ok" []
  | Accepted { id; queue_depth } ->
      obj "accepted"
        [ ("id", Jsonl.String id); ("queue_depth", Jsonl.Int queue_depth) ]
  | Rejected { retry_after_ms; queue_depth } ->
      obj "rejected"
        [
          ("retry_after_ms", Jsonl.Int retry_after_ms);
          ("queue_depth", Jsonl.Int queue_depth);
        ]
  | Job_status { id; state; round } ->
      obj "job-status"
        [
          ("id", Jsonl.String id);
          ("state", Jsonl.String state);
          ("round", Jsonl.Int round);
        ]
  | Job_result { id; body } ->
      obj "job-result" [ ("id", Jsonl.String id); ("body", Jsonl.String body) ]
  | Stats_reply fields -> obj "stats" fields
  | Metrics_reply { body } -> obj "metrics" [ ("body", Jsonl.String body) ]
  | Event { ev; id; round; detail } ->
      obj "event"
        (("event", Jsonl.String ev)
         :: ("id", Jsonl.String id)
         :: ("round", Jsonl.Int round)
         ::
         (if detail = "" then [] else [ ("detail", Jsonl.String detail) ]))
  | Error_reply { code; message } ->
      obj "error"
        [ ("code", Jsonl.String code); ("message", Jsonl.String message) ]

(* Decoding ----------------------------------------------------------- *)

let parse_envelope line =
  match Jsonl.parse line with
  | None -> Error "payload is not a flat JSON object"
  | Some fields -> (
      match Jsonl.find_string fields "schema" with
      | Some s when s = schema -> (
          match Jsonl.find_string fields "type" with
          | Some ty -> Ok (ty, fields)
          | None -> Error "payload has no \"type\" field")
      | Some s -> Error (Printf.sprintf "unknown schema %S" s)
      | None -> Error "payload has no \"schema\" field")

let need_string fields key =
  match Jsonl.find_string fields key with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing string field %S" key)

let need_int fields key =
  match Jsonl.find_int fields key with
  | Some k -> Ok k
  | None -> Error (Printf.sprintf "missing integer field %S" key)

let ( let* ) = Result.bind

let spec_of_fields fields =
  let* n = need_int fields "n" in
  let m = Option.value ~default:n (Jsonl.find_int fields "m") in
  let* rounds = need_int fields "rounds" in
  let* seed = need_int fields "seed" in
  let* init = need_string fields "init" in
  let* engine_s = need_string fields "engine" in
  let* engine =
    match engine_of_name engine_s with
    | Some e -> Ok e
    | None -> Error (Printf.sprintf "job spec: unknown engine %S" engine_s)
  in
  let deadline_s =
    Option.value ~default:infinity (Jsonl.find_float fields "deadline_s")
  in
  let spec = { n; m; rounds; seed; init; engine; deadline_s } in
  let* () = validate_spec spec in
  Ok spec

let request_of_json line =
  let* ty, fields = parse_envelope line in
  match ty with
  | "ping" -> Ok Ping
  | "submit" ->
      let* spec = spec_of_fields fields in
      Ok (Submit spec)
  | "status" ->
      let* id = need_string fields "id" in
      Ok (Status id)
  | "result" ->
      let* id = need_string fields "id" in
      Ok (Result id)
  | "subscribe" -> Ok (Subscribe (Jsonl.find_string fields "id"))
  | "stats" -> Ok Stats
  | "metrics" -> Ok Metrics
  | "reset-stats" -> Ok Reset_stats
  | "shutdown" -> Ok Shutdown
  | ty -> Error (Printf.sprintf "unknown request type %S" ty)

let strip_envelope fields =
  List.filter (fun (k, _) -> k <> "schema" && k <> "type") fields

let response_of_json line =
  let* ty, fields = parse_envelope line in
  match ty with
  | "pong" -> Ok Pong
  | "ok" -> Ok Ok_reply
  | "accepted" ->
      let* id = need_string fields "id" in
      let* queue_depth = need_int fields "queue_depth" in
      Ok (Accepted { id; queue_depth })
  | "rejected" ->
      let* retry_after_ms = need_int fields "retry_after_ms" in
      let* queue_depth = need_int fields "queue_depth" in
      Ok (Rejected { retry_after_ms; queue_depth })
  | "job-status" ->
      let* id = need_string fields "id" in
      let* state = need_string fields "state" in
      let* round = need_int fields "round" in
      Ok (Job_status { id; state; round })
  | "job-result" ->
      let* id = need_string fields "id" in
      let* body = need_string fields "body" in
      Ok (Job_result { id; body })
  | "stats" -> Ok (Stats_reply (strip_envelope fields))
  | "metrics" ->
      let* body = need_string fields "body" in
      Ok (Metrics_reply { body })
  | "event" ->
      let* ev = need_string fields "event" in
      let* id = need_string fields "id" in
      let* round = need_int fields "round" in
      let detail =
        Option.value ~default:"" (Jsonl.find_string fields "detail")
      in
      Ok (Event { ev; id; round; detail })
  | "error" ->
      let* code = need_string fields "code" in
      let* message = need_string fields "message" in
      Ok (Error_reply { code; message })
  | ty -> Error (Printf.sprintf "unknown response type %S" ty)

(* Frames ------------------------------------------------------------- *)

let encode_frame payload =
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

type frame_error = { code : string; message : string; fatal : bool }

type extracted =
  | Need_more
  | Frame of { payload : string; consumed : int }
  | Skip of { consumed : int; discard : int; error : frame_error }
  | Corrupt of frame_error

(* The length header is at most 10 digits: a larger (or non-numeric)
   header means the peer is not speaking the protocol at all, and the
   stream has no recoverable frame boundary. *)
let max_header_digits = 10

let corrupt message = Corrupt { code = "bad_frame"; message; fatal = true }

let extract ~max_frame buf =
  if max_frame < 1 then invalid_arg "Protocol.extract: max_frame must be >= 1";
  let len = String.length buf in
  match String.index_opt buf '\n' with
  | None ->
      if len > max_header_digits then
        corrupt "frame header is not a length line"
      else Need_more
  | Some nl ->
      if nl = 0 || nl > max_header_digits then
        corrupt "frame header is not a length line"
      else
        let header = String.sub buf 0 nl in
        if not (String.for_all (fun c -> c >= '0' && c <= '9') header) then
          corrupt "frame header is not a length line"
        else
          let payload_len = int_of_string header in
          if payload_len > max_frame then
            Skip
              {
                consumed = nl + 1;
                discard = payload_len + 1;
                error =
                  {
                    code = "oversized";
                    message =
                      Printf.sprintf
                        "frame of %d bytes exceeds the %d byte limit"
                        payload_len max_frame;
                    fatal = false;
                  };
              }
          else if len < nl + 1 + payload_len + 1 then Need_more
          else if buf.[nl + 1 + payload_len] <> '\n' then
            corrupt "frame payload is not newline-terminated"
          else
            Frame
              {
                payload = String.sub buf (nl + 1) payload_len;
                consumed = nl + 1 + payload_len + 1;
              }
