(** Bounded admission queue with explicit rejection, plus the measured
    arrival/service statistics the M/M/c validation feeds on.

    The daemon's load shedding happens here: a submit lands in a FIFO
    queue of bounded depth or is {e rejected} with a retry-after hint —
    the queue never grows without bound, so an overloaded daemon
    degrades by refusing work, not by dying.  Worker domains block in
    {!pop}; {!close} wakes them all with [None] (a graceful drain:
    entries still queued stay on disk as job spec files and are resumed
    by the next daemon).

    Every accepted entry is timestamped at submit, start and
    completion, so the queue doubles as the measurement plane: waiting
    time (submit→start), service time (start→done) and sojourn time
    (submit→done) per job, plus the arrival window — exactly the
    [lambda] and [mu] estimates an M/M/c fit needs
    ({!Rbb_queueing.Mmc}).  All operations are safe to call from any
    domain. *)

type t

type entry = {
  id : string;
  spec : Protocol.job_spec;
  t_submit : int64;  (** ns, queue clock *)
  mutable t_start : int64;  (** ns; 0 until {!note_started} *)
}

val create : ?clock:(unit -> int64) -> depth:int -> servers:int -> unit -> t
(** [depth] is the maximum number of queued-but-not-started entries;
    [servers] the worker count, used by the retry-after estimate.
    [clock] (default: the monotonic clock, ns) is injectable for
    deterministic tests.
    @raise Invalid_argument if [depth < 1] or [servers < 1]. *)

val accepting : t -> bool
(** Whether a {!submit} issued now would be accepted.  Sound as a
    pre-check only from the single submitting thread (the daemon's
    event loop): concurrent pops can only shrink the queue, so a [true]
    cannot turn into a rejection before that thread's {!submit}. *)

val try_reject : t -> int option
(** The submitting thread's load-shedding decision, made atomically:
    when the queue is full (or closed), count a rejection and return
    [Some retry_after_ms] under a single lock acquisition; return
    [None] when a {!submit} issued now by that thread would be
    accepted.  This is the safe way to reject — re-checking fullness
    and counting happen together, so a worker popping between a
    caller's {!accepting} probe and its decision can never turn a
    planned rejection into an unintended enqueue.  After [None],
    concurrent pops can only shrink the queue further, so the
    follow-up {!submit} from the same (sole submitting) thread is
    guaranteed to be accepted. *)

val submit :
  t ->
  id:string ->
  spec:Protocol.job_spec ->
  [ `Accepted of int | `Rejected of int ]
(** Enqueue, or reject when [depth] entries are already waiting.
    [`Accepted k] reports the queue length after the insert;
    [`Rejected ms] hints how long to back off (the expected time for
    the backlog to drain: [queue_len * mean_service / servers], from
    measured service times, with a coarse default before any job has
    completed).  Rejected when closed, too. *)

val resubmit : t -> id:string -> spec:Protocol.job_spec -> unit
(** Recovery-path enqueue that ignores the depth bound: jobs found on
    disk at daemon startup must never be refused (they were already
    admitted by a previous life of the daemon). *)

val pop : t -> entry option
(** Block until an entry is available (FIFO) or the queue is closed;
    [None] only after {!close}. *)

val close : t -> unit
(** Reject future submits, wake every blocked {!pop} with [None].
    Idempotent. *)

val note_started : t -> entry -> unit
(** Stamp the entry's start time (records its waiting-time sample). *)

val note_done : t -> entry -> ok:bool -> unit
(** Record service and sojourn samples for a finished job. *)

val queue_length : t -> int

(** {2 Measured statistics} *)

type stats = {
  arrivals : int;  (** accepted submits (incl. resubmits) *)
  rejected : int;
  started : int;
  completed : int;  (** finished ok *)
  failed : int;  (** finished with an error *)
  queue_len : int;
  first_arrival : int64;  (** ns; 0 when no arrivals *)
  last_arrival : int64;
  wait_ns : float array;  (** one sample per started job *)
  service_ns : float array;  (** one sample per finished job *)
  sojourn_ns : float array;  (** one sample per finished job *)
}

val stats : t -> stats
(** Snapshot of all measurements so far. *)

val reset_stats : t -> unit
(** Drop accumulated samples and counters (queued entries are kept):
    lets a load harness measure a clean window after warming up. *)
