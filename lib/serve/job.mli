(** Deterministic, crash-safe execution of one [rbb.job/1] job.

    A job's on-disk footprint under the daemon's state directory is

    - [<id>.job] — the accepted spec (written atomically on admission,
      {e before} the submit is acknowledged: an acknowledged job
      survives any crash);
    - [<id>.ckpt] — a rolling {!Rbb_sim.Checkpoint} snapshot, republished
      atomically every [checkpoint_every] rounds while running;
    - [<id>.result] — the one-line [rbb.job-result/1] document, written
      atomically on completion.  Its presence marks the job done.
    - [<id>.failed] — a one-line [rbb.job-failed/1] marker (last
      checkpointed round + error detail), written when a run raises.
      Its presence marks the job permanently failed: {!scan} skips it,
      so a restarted daemon does not resubmit a job that would only
      re-fail forever.

    {!run} picks up whatever is on disk: with a checkpoint it resumes
    mid-trajectory (bit-identically — {!Rbb_sim.Checkpoint}'s exactness
    guarantee), otherwise it starts fresh from the spec.  Because every
    result field is a deterministic function of the final engine state
    and the spec, {b a job interrupted by [kill -9] and re-run produces
    a result document byte-identical to an uninterrupted run's}. *)

val spec_path : state_dir:string -> id:string -> string
val checkpoint_path : state_dir:string -> id:string -> string
val result_path : state_dir:string -> id:string -> string
val failed_path : state_dir:string -> id:string -> string

val write_spec : state_dir:string -> id:string -> Protocol.job_spec -> unit
(** Publish [<id>.job] atomically (one [rbb.job-spec/1] line). *)

val write_failed :
  state_dir:string -> id:string -> round:int -> detail:string -> unit
(** Publish [<id>.failed] atomically: the job's durable failure record
    ([round] is the last checkpointed round the run reached). *)

val read_failed : state_dir:string -> id:string -> (int * string) option
(** [(round, detail)] from the failure marker, if one exists.  An
    existing but unreadable marker still counts as a failure (with
    placeholder detail): presence is the fact. *)

val load_spec : path:string -> (string * Protocol.job_spec, string) result
(** Read back a spec file: [(id, spec)]. *)

val scan :
  state_dir:string -> (string * Protocol.job_spec) list * int
(** All jobs on disk with a spec but neither a result nor a failure
    marker — the work a restarted daemon must finish — sorted by id,
    plus the successor of the largest job sequence number seen (for
    fresh id allocation; failed jobs still advance the sequence). *)

val fresh_id : int -> string
(** ["job-%06d"]. *)

val run :
  ?on_progress:(round:int -> unit) ->
  state_dir:string ->
  checkpoint_every:int ->
  id:string ->
  Protocol.job_spec ->
  (string * Rbb_sim.Jsonl.value) list
(** Run (or resume) the job to completion and publish its result;
    returns the result fields.  [on_progress] fires at every checkpoint
    publication with the completed round.
    @raise Invalid_argument if [checkpoint_every < 1] or the spec is
    invalid; [Failure] if an existing checkpoint is unreadable or
    belongs to a different engine family. *)

val result_body : (string * Rbb_sim.Jsonl.value) list -> string
(** The result document line (no trailing newline) — the exact bytes
    stored in [<id>.result] and echoed through [Job_result]. *)
