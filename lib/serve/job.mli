(** Deterministic, crash-safe execution of one [rbb.job/1] job.

    A job's on-disk footprint under the daemon's state directory is

    - [<id>.job] — the accepted spec (written atomically on admission,
      {e before} the submit is acknowledged: an acknowledged job
      survives any crash);
    - [<id>.ckpt] — a rolling {!Rbb_sim.Checkpoint} snapshot, republished
      atomically every [checkpoint_every] rounds while running;
    - [<id>.result] — the one-line [rbb.job-result/1] document, written
      atomically on completion.  Its presence marks the job done.
    - [<id>.failed] — a one-line [rbb.job-failed/1] marker (last
      checkpointed round + error detail), written when a run raises.
      Its presence marks the job permanently failed: {!scan} skips it,
      so a restarted daemon does not resubmit a job that would only
      re-fail forever.
    - [quarantine/] — corrupt artifacts (checkpoints whose CRC or
      schema fails to load, unparseable spec files) are {e moved} here
      rather than deleted: evidence for the operator, out of the way of
      the recovery path.

    {!run} picks up whatever is on disk: with a checkpoint it resumes
    mid-trajectory (bit-identically — {!Rbb_sim.Checkpoint}'s exactness
    guarantee); with a {e corrupt} checkpoint it quarantines the file
    and restarts from the durable spec; otherwise it starts fresh.
    Because every result field is a deterministic function of the final
    engine state and the spec, {b a job interrupted by [kill -9] and
    re-run — even one whose checkpoint was corrupted and quarantined —
    produces a result document byte-identical to an uninterrupted
    run's}. *)

val spec_path : state_dir:string -> id:string -> string
val checkpoint_path : state_dir:string -> id:string -> string
val result_path : state_dir:string -> id:string -> string
val failed_path : state_dir:string -> id:string -> string

val quarantine_dir : state_dir:string -> string
(** [state_dir ^ "/quarantine"], created on first use. *)

val quarantine_file : state_dir:string -> path:string -> string option
(** Move [path] into the quarantine directory (creating it if needed),
    suffixing the name if a previous offender already sits there.
    Returns the destination, or [None] when the move failed (the caller
    must then make sure the poison is not re-read). *)

exception Canceled of { id : string; round : int; reason : string }
(** Raised out of {!run} when [should_stop] asks for cancellation —
    the daemon's deadline watchdog turns this into a durable [.failed]
    marker.  [round] is the last completed round. *)

val write_spec : state_dir:string -> id:string -> Protocol.job_spec -> unit
(** Publish [<id>.job] atomically (one [rbb.job-spec/1] line). *)

val write_failed :
  state_dir:string -> id:string -> round:int -> detail:string -> unit
(** Publish [<id>.failed] atomically: the job's durable failure record
    ([round] is the last checkpointed round the run reached). *)

val read_failed : state_dir:string -> id:string -> (int * string) option
(** [(round, detail)] from the failure marker, if one exists.  An
    existing but unreadable marker still counts as a failure (with
    placeholder detail): presence is the fact. *)

val load_spec : path:string -> (string * Protocol.job_spec, string) result
(** Read back a spec file: [(id, spec)]. *)

val scan :
  ?on_quarantine:(id:string -> reason:string -> unit) ->
  state_dir:string ->
  unit ->
  (string * Protocol.job_spec) list * int
(** All jobs on disk with a spec but neither a result nor a failure
    marker — the work a restarted daemon must finish — sorted by id,
    plus the successor of the largest job sequence number seen (for
    fresh id allocation; failed jobs still advance the sequence).
    A spec file that no longer parses (or names a different id) is
    quarantined and a durable [.failed] marker is written in its place,
    so an acknowledged job can corrupt to {e failed} but never to
    {e silently absent}; [on_quarantine] observes each such event. *)

val fresh_id : int -> string
(** ["job-%06d"]. *)

val run :
  ?on_progress:(round:int -> unit) ->
  ?on_quarantine:(path:string -> reason:string -> unit) ->
  ?on_save_error:(round:int -> error:string -> unit) ->
  ?should_stop:(unit -> string option) ->
  state_dir:string ->
  checkpoint_every:int ->
  id:string ->
  Protocol.job_spec ->
  (string * Rbb_sim.Jsonl.value) list
(** Run (or resume) the job to completion and publish its result;
    returns the result fields.  [on_progress] fires at every checkpoint
    publication with the completed round.  An unreadable or
    wrong-engine checkpoint is quarantined ([on_quarantine] observes
    the destination and reason) and the job restarts from the spec —
    deterministically byte-identical, see above.  A checkpoint save
    that raises (disk full, injected I/O fault) is reported to
    [on_save_error] and the run continues on the previous snapshot; the
    final result write is retried a few times before the exception
    escapes.  [should_stop] is polled once per round; a [Some reason]
    cancels the run.
    @raise Invalid_argument if [checkpoint_every < 1] or the spec is
    invalid; {!Canceled} when [should_stop] fired. *)

val result_body : (string * Rbb_sim.Jsonl.value) list -> string
(** The result document line (no trailing newline) — the exact bytes
    stored in [<id>.result] and echoed through [Job_result]. *)
