(** Chaos campaign harness: randomized, seeded fault schedules against
    a live daemon, with the storage layer's contracts asserted at the
    end.

    One campaign is a sequence of cycles.  Each cycle spawns a real
    daemon process (fork, so SIGKILL is machine-failure-grade) with
    probabilistic [io.*] failpoints armed in its storage shim, submits
    a batch of closed-loop jobs (some with tight deadlines), lets the
    system run for a seeded random interval, SIGKILLs the daemon, and
    — while it is down — flips bits in or truncates surviving
    checkpoint files and occasionally a pending spec.  A final
    fault-free daemon recovers and drains everything, and the campaign
    then audits the durable record:

    - {b no acked job lost} — every id acknowledged to the client ends
      with a durable result or a durable [.failed] marker;
    - {b identity} — every published result is byte-identical to a solo
      re-execution of its spec in a clean directory;
    - {b bounded recovery} — every daemon (re)start answered a ping
      within [recovery_bound_s].

    The whole schedule (job specs, kill delays, corruption targets,
    failpoint seeds) derives from [seed]; wall-clock racing makes the
    {e trajectory} nondeterministic, but the invariants hold for every
    trajectory — that is what makes it a chaos test rather than a
    flake. *)

type config = {
  dir : string;  (** scratch directory (state dir, sockets) *)
  cycles : int;  (** kill/corrupt/restart cycles (minimum) *)
  max_cycles : int;  (** hard stop while chasing [min_faults] *)
  min_faults : int;
      (** keep cycling (up to [max_cycles]) until kills + corruptions +
          observed injected I/O faults reach this count *)
  jobs_per_cycle : int;
  rounds : int;  (** rounds per job *)
  n : int;  (** bins per job *)
  workers : int;  (** daemon worker domains *)
  checkpoint_every : int;
  seed : int;  (** drives the whole schedule *)
  io_fault_p : float;  (** per-operation probability for io.* points *)
  kill_delay_s : float * float;
      (** uniform range: seconds of load before each SIGKILL *)
  deadline_every : int;
      (** every k-th job gets a tight (~0.1 s) deadline; 0 = never *)
  corrupt_spec_every : int;
      (** every k-th cycle also poisons one pending spec; 0 = never *)
  recovery_bound_s : float;
  log : out_channel option;  (** progress lines; [None] silent *)
}

val default_config : dir:string -> config
(** 4 cycles (up to 12), 6 jobs/cycle of 4000 rounds at n = 64,
    2 workers, checkpoint every 16 rounds, 2% I/O fault rate,
    0.10–0.45 s kill delays, every 5th job deadlined, every 3rd cycle a
    spec poisoned, 30 s recovery bound, silent. *)

type result = {
  cycles_run : int;
  kills : int;
  corruptions : int;  (** files bit-flipped or truncated *)
  io_faults : int;
      (** injected shim faults observed via stats polling — a lower
          bound (faults after a life's last poll die with the process) *)
  faults_total : int;  (** kills + corruptions + io_faults *)
  jobs_acked : int;
  jobs_done : int;
  jobs_failed : int;  (** durable failures: deadlines, poisoned specs *)
  acked_jobs_lost : int;  (** MUST be 0 *)
  identity_checked : int;  (** results compared against solo re-runs *)
  identity_violations : int;  (** MUST be 0 *)
  quarantined_files : int;
  recovery_s : float array;  (** one sample per daemon (re)start *)
  recovery_bound_s : float;
  recovery_ok : bool;  (** all recovery samples within the bound *)
}

val run : config -> result
(** Execute the campaign.  Runs real processes ([fork] / [SIGKILL])
    under [dir]; the state directory is left in place as evidence.
    @raise Invalid_argument on nonsensical config values. *)

val to_fields : result -> (string * Rbb_sim.Jsonl.value) list
(** Flat JSON fields (schema [rbb.bench-chaos/1]) for [BENCH_chaos.json]
    and the CLI's summary line. *)

val passed : result -> bool
(** [acked_jobs_lost = 0 && identity_violations = 0 && recovery_ok]. *)
