(* Blocking protocol client: a connected fd plus a receive buffer the
   frame extractor chews on. *)

module Jsonl = Rbb_sim.Jsonl

type t = {
  fd : Unix.file_descr;
  mutable inbuf : string;
  max_frame : int;
  read_timeout_s : float;
}

let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let connect ?(retry_for = 5.) ?(max_frame = Protocol.default_max_frame)
    ?(read_timeout_s = 30.) ~socket () =
  if Float.is_nan read_timeout_s || read_timeout_s <= 0. then
    invalid_arg "Client.connect: read_timeout_s must be positive";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let deadline = now_s () +. retry_for in
  let rec go () =
    let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    match Unix.connect fd (ADDR_UNIX socket) with
    | () -> { fd; inbuf = ""; max_frame; read_timeout_s }
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED | EAGAIN), _, _)
      when now_s () < deadline ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        go ()
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        failwith
          (Printf.sprintf "client: cannot connect to %s: %s" socket
             (Unix.error_message e))
  in
  go ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
  in
  go 0

let send t req =
  write_all t.fd (Protocol.encode_frame (Protocol.request_to_json req))

(* One response, or Failure once [deadline] passes with no complete
   frame: a wedged (but not dead) daemon must not hang the caller.
   [deadline = infinity] blocks forever — that is what event streaming
   wants, and a *dead* daemon still can't hang it (EOF). *)
let rec recv_until t ~deadline =
  match Protocol.extract ~max_frame:t.max_frame t.inbuf with
  | Protocol.Frame { payload; consumed } -> (
      t.inbuf <- String.sub t.inbuf consumed (String.length t.inbuf - consumed);
      match Protocol.response_of_json payload with
      | Ok resp -> resp
      | Error e -> failwith ("client: unintelligible response: " ^ e))
  | Protocol.Need_more ->
      let timeout =
        if deadline = infinity then -1.
        else
          let r = deadline -. now_s () in
          if r <= 0. then
            failwith "client: daemon did not respond within the read timeout"
          else r
      in
      let rs, _, _ =
        try Unix.select [ t.fd ] [] [] timeout
        with Unix.Unix_error (EINTR, _, _) -> ([], [], [])
      in
      if rs = [] then recv_until t ~deadline
      else begin
        let buf = Bytes.create 4096 in
        (match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> failwith "client: connection closed by daemon"
        | n -> t.inbuf <- t.inbuf ^ Bytes.sub_string buf 0 n
        | exception Unix.Unix_error (EINTR, _, _) -> ());
        recv_until t ~deadline
      end
  | Protocol.Skip _ | Protocol.Corrupt _ ->
      failwith "client: corrupt frame from daemon"

let recv t = recv_until t ~deadline:(now_s () +. t.read_timeout_s)

let request t req =
  send t req;
  recv t

let fail_reply what resp =
  match (resp : Protocol.response) with
  | Error_reply { code; message } ->
      failwith (Printf.sprintf "client: %s: %s (%s)" what message code)
  | _ -> failwith (Printf.sprintf "client: %s: unexpected response" what)

let ping t =
  match request t Protocol.Ping with
  | Protocol.Pong -> ()
  | resp -> fail_reply "ping" resp

let submit t spec =
  match request t (Protocol.Submit spec) with
  | Protocol.Accepted { id; _ } -> `Accepted id
  | Protocol.Rejected { retry_after_ms; _ } -> `Rejected retry_after_ms
  | resp -> fail_reply "submit" resp

let submit_wait ?(attempts = 100) t spec =
  let rec go k =
    if k > attempts then
      failwith
        (Printf.sprintf "client: submit rejected %d times; giving up" attempts)
    else
      match submit t spec with
      | `Accepted id -> id
      | `Rejected retry_after_ms ->
          Unix.sleepf (float_of_int (max 1 retry_after_ms) /. 1e3);
          go (k + 1)
  in
  go 1

let await_result ?(poll_s = 0.02) t ~id =
  let rec go () =
    match request t (Protocol.Result id) with
    | Protocol.Job_result { body; _ } -> body
    | Protocol.Job_status _ ->
        Unix.sleepf poll_s;
        go ()
    | resp -> fail_reply ("result of " ^ id) resp
  in
  go ()

let stats t =
  match request t Protocol.Stats with
  | Protocol.Stats_reply fields -> fields
  | resp -> fail_reply "stats" resp

let metrics t =
  match request t Protocol.Metrics with
  | Protocol.Metrics_reply { body } -> body
  | resp -> fail_reply "metrics" resp

let reset_stats t =
  match request t Protocol.Reset_stats with
  | Protocol.Ok_reply -> ()
  | resp -> fail_reply "reset-stats" resp

let shutdown t =
  match request t Protocol.Shutdown with
  | Protocol.Ok_reply -> ()
  | resp -> fail_reply "shutdown" resp

let subscribe t ?id () =
  match request t (Protocol.Subscribe id) with
  | Protocol.Ok_reply -> ()
  | resp -> fail_reply "subscribe" resp

let rec next_event t =
  match recv_until t ~deadline:infinity with
  | Protocol.Event ev -> ev
  | _ -> next_event t
