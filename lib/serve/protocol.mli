(** The [rbb.job/1] wire protocol: length-prefixed NDJSON frames over a
    Unix-domain socket.

    One frame carries one flat JSON object in the {!Rbb_sim.Jsonl}
    dialect (sorted keys, fixed number formats — deterministic bytes
    for a fixed value).  The frame encoding is

    {v <decimal payload length>\n<payload>\n v}

    so a frame is self-delimiting without being fragile to embedded
    data: readers never scan JSON for boundaries, they read exactly the
    advertised byte count.  Every payload object carries
    ["schema":"rbb.job/1"] and a ["type"] discriminator.

    Decoding is {e total}: malformed frames and payloads map to
    structured {!frame_error}s / prose [Error]s instead of exceptions,
    so a server can answer garbage with an [error] response and keep
    the connection alive.  The one unrecoverable case is a corrupt
    frame {e header} (the stream can no longer be re-synchronised);
    {!frame_error.fatal} marks it. *)

val schema : string
(** ["rbb.job/1"]. *)

val default_max_frame : int
(** 65536 bytes of payload. *)

(** {2 Job specifications} *)

type engine = Balls | Counts

type job_spec = {
  n : int;  (** bins *)
  m : int;
      (** balls.  On the wire ["m"] is optional and defaults to [n]
          (the paper's m = n regime); encoders emit it only when
          [m <> n], so m = n specs keep their historical bytes and old
          clients keep working. *)
  rounds : int;  (** rounds to run *)
  seed : int;  (** PRNG seed; jobs are deterministic in it *)
  init : string;
      (** ["uniform"] (m = n only), ["balanced"], ["pile"] or
          ["random"] *)
  engine : engine;
  deadline_s : float;
      (** wall-clock budget, measured from dispatch to a worker.  On
          the wire ["deadline_s"] is optional and defaults to
          [infinity] (no deadline); encoders emit it only when finite,
          so deadline-less specs keep their historical bytes.  The
          daemon's watchdog fails an over-deadline job through the
          durable [.failed] machinery and frees the worker. *)
}

val validate_spec : job_spec -> (unit, string) result
(** Field validation ([n >= 1], [m >= 0], [rounds >= 0],
    [deadline_s > 0] and not NaN, known [init]; ["uniform"]
    additionally requires [m = n] — use ["balanced"] for the even
    spread of an arbitrary ball count). *)

val engine_name : engine -> string

(** {2 Requests and responses} *)

type request =
  | Ping
  | Submit of job_spec
  | Status of string  (** job id *)
  | Result of string  (** job id *)
  | Subscribe of string option  (** [None] = all jobs *)
  | Stats
  | Metrics  (** scrape the daemon's Prometheus exposition *)
  | Reset_stats
  | Shutdown

type event = {
  ev : string;
      (** ["accepted"], ["started"], ["checkpoint"], ["quarantined"],
          ["done"], ["failed"] *)
  id : string;
  round : int;  (** progress round; 0 when not meaningful *)
  detail : string;  (** free prose; [""] when absent *)
}

type response =
  | Pong
  | Ok_reply
  | Accepted of { id : string; queue_depth : int }
  | Rejected of { retry_after_ms : int; queue_depth : int }
      (** admission control: the queue is full; try again after the
          hinted backoff *)
  | Job_status of { id : string; state : string; round : int }
      (** [state]: ["queued"], ["running"], ["done"], ["failed"],
          ["unknown"] *)
  | Job_result of { id : string; body : string }
      (** [body] is the job's result document verbatim — the exact
          bytes of the one-line [rbb.job-result/1] object the daemon
          published, so a client can compare results byte for byte *)
  | Stats_reply of (string * Rbb_sim.Jsonl.value) list
      (** measured service statistics, as flat fields (see {!Daemon}) *)
  | Metrics_reply of { body : string }
      (** the Prometheus text-format exposition, verbatim — the same
          bytes the daemon publishes to [metrics.prom].  Can exceed
          {!default_max_frame} on a busy daemon; scraping clients
          should connect with a roomier [max_frame] *)
  | Event of event  (** streamed to subscribers *)
  | Error_reply of { code : string; message : string }
      (** structured rejection: [code] is machine-readable
          (["bad_frame"], ["bad_json"], ["bad_request"], ["oversized"],
          ["unknown_job"], ["job_failed"], ["shutting_down"]) *)

(** {2 Payload codec} *)

val request_to_json : request -> string
val request_of_json : string -> (request, string) result
val response_to_json : response -> string
val response_of_json : string -> (response, string) result

(** {2 Frame codec} *)

val encode_frame : string -> string
(** Wrap a payload: [len ^ "\n" ^ payload ^ "\n"]. *)

type frame_error = {
  code : string;  (** ["oversized"] or ["bad_frame"] *)
  message : string;
  fatal : bool;
      (** [true] when the stream cannot be re-synchronised (corrupt
          header) and the connection should be closed after the error
          response; [false] when the frame was cleanly skipped *)
}

type extracted =
  | Need_more  (** no complete frame in the buffer yet *)
  | Frame of { payload : string; consumed : int }
  | Skip of { consumed : int; discard : int; error : frame_error }
      (** a well-formed header advertising an oversized payload:
          consume [consumed] bytes now, then discard the next
          [discard] bytes as they arrive, answer with [error], and
          keep the connection *)
  | Corrupt of frame_error  (** unsyncable: answer and close *)

val extract : max_frame:int -> string -> extracted
(** Try to take one frame off the front of a receive buffer. *)
