(** The [rbb top] live dashboard.

    Polls a daemon's [stats] and [metrics] requests and (when the state
    directory is known) tails its [events.ndjson] with
    {!Rbb_sim.Jsonl.tail}, rendering queue depth, estimated load,
    throughput, sojourn quantiles from the scraped job histograms next
    to the {!Rbb_queueing.Mmc} predicted wait, and per-job progress.

    Frame assembly ({!assemble}) and rendering ({!render}) are pure —
    tests feed them canned stats fields and scraped bodies; only {!run}
    owns a connection and a clock. *)

type job_row = { id : string; state : string; round : int }

type view = {
  queue_len : int;
  queue_capacity : int;
  workers : int;
  running : int;
  completed : int;
  failed : int;
  rejected : int;
  jobs_per_s : float;
  lambda_hat : float;
  utilization : float;
  sojourn_p50_s : float option;
  sojourn_p95_s : float option;
  sojourn_p99_s : float option;
  mmc_wait_s : float option;
  jobs : job_row list;
}

(** {2 Pure assembly} *)

type tracker
(** Per-job progress state, folded from lifecycle events. *)

val tracker : unit -> tracker
val note_event : tracker -> Protocol.event -> unit

val note_event_line : tracker -> string -> unit
(** Feed one [events.ndjson] line (non-event or unparseable lines are
    ignored). *)

val jobs_of_tracker : ?limit:int -> tracker -> job_row list
(** Most recently updated jobs first, at most [limit] (default 8). *)

val assemble :
  stats:(string * Rbb_sim.Jsonl.value) list ->
  metrics_body:string ->
  completed_delta:int ->
  dt:float ->
  jobs:job_row list ->
  view
(** Build one frame from a [stats] reply, a scraped exposition body,
    and the completion delta over the [dt] seconds since the previous
    frame. *)

val render : view -> string
(** One plain-text frame, newline-terminated lines, no escape codes. *)

(** {2 The live loop} *)

val run :
  ?state_dir:string ->
  ?interval_s:float ->
  ?frames:int ->
  ?once:bool ->
  ?out:out_channel ->
  socket:string ->
  unit ->
  unit
(** Poll every [interval_s] (default 1 s) and repaint [out] (default
    stdout; cleared with ANSI escapes between frames).  [frames > 0]
    stops after that many frames; [once] prints a single frame with no
    screen clearing — the scriptable/testable mode.  [state_dir]
    enables the per-job progress table.  @raise Failure when the
    daemon cannot be reached at all. *)
