(** The [rbb serve] daemon: a crash-safe simulation service over a
    Unix-domain socket.

    One process owns a {e state directory} (exclusive
    {!Rbb_sim.Fileio.acquire_lock} pid lock — two daemons can never
    share one) and a socket speaking {!Protocol} frames.  Jobs flow

    {v submit → admission queue (bounded; explicit reject) → worker
       domains ({!Rbb_sim.Parallel.map_domains} hosts the pool) →
       checkpointed execution ({!Job.run}) → atomic result v}

    {b Crash safety.}  Every accepted job's spec is on disk before the
    accept is acknowledged, running jobs republish a checkpoint every
    [checkpoint_every] rounds, and results are published atomically —
    so [kill -9] at any instant loses at most one checkpoint interval
    of compute and zero acknowledged jobs.  On startup the daemon scans
    its state directory and re-enqueues every job with a spec but no
    result; those with a checkpoint resume {e bit-identically}
    ({!Rbb_sim.Checkpoint}), so an interrupted job's result is
    byte-identical to an uninterrupted run's.  A job whose run raises
    gets a durable [<id>.failed] marker instead: later daemon lives
    report the failure (status/result) rather than resubmitting a job
    that would only re-fail on every restart.

    {b Observability.}  Every job lifecycle transition (accepted /
    started / checkpoint / done / failed) is appended to
    [events.ndjson] in the state directory (flushed per line, so
    {!Rbb_sim.Jsonl.tail} can follow it live) and streamed as [event]
    frames to connected subscribers.  The [stats] request returns the
    measured arrival/service statistics ({!Admission.stats}) that
    [rbb slam] fits against the {!Rbb_queueing.Mmc} model.

    The daemon also keeps a {!Rbb_obs.Registry}: per-job
    wait/service/sojourn histograms labeled by outcome, queue/worker
    gauges, estimated λ̂/μ̂/ρ̂ and lifetime counters.  The [metrics]
    request returns the Prometheus text exposition, and the same bytes
    are republished atomically to [metrics.prom] in the state directory
    about once a second and at shutdown.  [reset-stats] zeroes the job
    histograms together with {!Admission.reset_stats}, so a measurement
    window scraped after a reset covers exactly the jobs the admission
    samples do. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  state_dir : string;  (** created if missing; exclusively locked *)
  workers : int;  (** worker domains = the [c] of the M/M/c view *)
  queue_depth : int;  (** admission bound *)
  checkpoint_every : int;  (** rounds between checkpoint publications *)
  max_frame : int;  (** protocol frame payload limit, bytes *)
  log : out_channel option;  (** startup/shutdown lines; [None] silent *)
  telemetry_path : string option;
      (** write the daemon's telemetry JSON here at shutdown *)
}

val default_config : socket:string -> state_dir:string -> config
(** workers 1, queue depth 16, checkpoint every 256 rounds, default
    frame limit, silent, no telemetry export. *)

val run : config -> unit
(** Run until a [shutdown] request arrives, then drain: in-flight jobs
    finish, queued-but-unstarted jobs stay on disk for the next daemon.
    @raise Invalid_argument on nonsensical config values or when the
    state directory is locked by a {e running} daemon (a stale lock
    left by a killed daemon is broken silently). *)
