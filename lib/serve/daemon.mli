(** The [rbb serve] daemon: a crash-safe simulation service over a
    Unix-domain socket.

    One process owns a {e state directory} (exclusive
    {!Rbb_sim.Fileio.acquire_lock} pid lock — two daemons can never
    share one) and a socket speaking {!Protocol} frames.  Jobs flow

    {v submit → admission queue (bounded; explicit reject) → worker
       domains ({!Rbb_sim.Parallel.map_domains} hosts the pool) →
       checkpointed execution ({!Job.run}) → atomic result v}

    {b Crash safety.}  Every accepted job's spec is on disk before the
    accept is acknowledged, running jobs republish a checkpoint every
    [checkpoint_every] rounds, and results are published atomically —
    so [kill -9] at any instant loses at most one checkpoint interval
    of compute and zero acknowledged jobs.  On startup the daemon scans
    its state directory and re-enqueues every job with a spec but no
    result; those with a checkpoint resume {e bit-identically}
    ({!Rbb_sim.Checkpoint}), so an interrupted job's result is
    byte-identical to an uninterrupted run's.  A job whose run raises
    gets a durable [<id>.failed] marker instead: later daemon lives
    report the failure (status/result) rather than resubmitting a job
    that would only re-fail on every restart.

    {b Corruption.}  Artifacts that fail to load — a checkpoint whose
    CRC trailer disagrees with its content, a spec that no longer
    parses — are {e quarantined} ({!Job.quarantine_file}): moved under
    [state_dir/quarantine/], counted, and reported as ["quarantined"]
    events.  A corrupt checkpoint costs only the checkpointed progress
    (the job restarts from its durable spec and, being deterministic,
    republishes a byte-identical result); a corrupt spec fails the job
    durably rather than letting an acknowledged job vanish.

    {b Deadlines.}  A spec may carry a finite [deadline_s]: the event
    loop's watchdog flips a per-job cancel flag once the wall-clock
    budget (measured from dispatch to a worker) expires, the worker
    observes it at the next round boundary, and the job fails through
    the same durable [.failed] machinery — freeing the worker for
    queued work.  Deadline kills are counted separately ([deadlined]
    in stats, outcome ["deadline"] in the job histograms).

    {b Observability.}  Every job lifecycle transition (accepted /
    started / checkpoint / done / failed) is appended to
    [events.ndjson] in the state directory (flushed per line, so
    {!Rbb_sim.Jsonl.tail} can follow it live) and streamed as [event]
    frames to connected subscribers.  The [stats] request returns the
    measured arrival/service statistics ({!Admission.stats}) that
    [rbb slam] fits against the {!Rbb_queueing.Mmc} model.

    The daemon also keeps a {!Rbb_obs.Registry}: per-job
    wait/service/sojourn histograms labeled by outcome, queue/worker
    gauges, estimated λ̂/μ̂/ρ̂ and lifetime counters.  The [metrics]
    request returns the Prometheus text exposition, and the same bytes
    are republished atomically to [metrics.prom] in the state directory
    about once a second and at shutdown.  [reset-stats] zeroes the job
    histograms together with {!Admission.reset_stats}, so a measurement
    window scraped after a reset covers exactly the jobs the admission
    samples do. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  state_dir : string;  (** created if missing; exclusively locked *)
  workers : int;  (** worker domains = the [c] of the M/M/c view *)
  queue_depth : int;  (** admission bound *)
  checkpoint_every : int;  (** rounds between checkpoint publications *)
  max_frame : int;  (** protocol frame payload limit, bytes *)
  log : out_channel option;  (** startup/shutdown lines; [None] silent *)
  telemetry_path : string option;
      (** write the daemon's telemetry JSON here at shutdown *)
  io_failpoints : Rbb_sim.Failpoint.t;
      (** I/O fault plane, armed process-wide
          ({!Rbb_sim.Fileio.set_failpoints}) once the daemon owns its
          lock — [io.write] / [io.fsync] / [io.rename] / [io.lock]
          triggers then fire inside every durable write.  This is the
          chaos harness's hook; production daemons leave the default
          {!Rbb_sim.Failpoint.noop}. *)
}

val default_config : socket:string -> state_dir:string -> config
(** workers 1, queue depth 16, checkpoint every 256 rounds, default
    frame limit, silent, no telemetry export, no injected faults. *)

val run : config -> unit
(** Run until a [shutdown] request arrives, then drain: in-flight jobs
    finish, queued-but-unstarted jobs stay on disk for the next daemon.
    @raise Invalid_argument on nonsensical config values or when the
    state directory is locked by a {e running} daemon (a stale lock
    left by a killed daemon is broken silently). *)
