(* Chaos campaign: a seeded schedule of kill -9, on-disk corruption and
   injected I/O faults thrown at a live daemon under closed-loop load,
   with the storage contracts asserted at the end.

   Each cycle: spawn a daemon (forked child, so SIGKILL is the real
   thing) with probabilistic io.* failpoints armed, submit a batch of
   jobs, let it run for a seeded random interval while sampling the
   injected-fault counter, SIGKILL it, then — while it is down — flip
   bits in (or truncate) surviving checkpoints and occasionally a
   pending spec.  The next cycle's daemon must take over the stale
   lock, quarantine whatever is poisoned, and keep going.

   The invariants checked after the final drain are exactly the
   storage layer's promises:

   - {e no acked job lost}: every id the client saw [Accepted] has a
     durable result or a durable failure marker on disk;
   - {e identity}: every result document is byte-identical to a solo
     re-execution of the same spec in a clean directory — crashes,
     quarantined checkpoints and retried writes never change bytes;
   - {e bounded recovery}: every daemon (re)start answered a ping
     within the configured bound. *)

module Failpoint = Rbb_sim.Failpoint
module Jsonl = Rbb_sim.Jsonl
module Rng = Rbb_prng.Rng

type config = {
  dir : string;  (** scratch directory (state dir, sockets) *)
  cycles : int;  (** kill/corrupt/restart cycles (minimum) *)
  max_cycles : int;  (** hard stop while chasing [min_faults] *)
  min_faults : int;  (** keep cycling until this many faults landed *)
  jobs_per_cycle : int;
  rounds : int;  (** rounds per job *)
  n : int;  (** bins per job *)
  workers : int;
  checkpoint_every : int;
  seed : int;  (** drives the whole schedule *)
  io_fault_p : float;  (** per-operation probability for io.* points *)
  kill_delay_s : float * float;  (** uniform range: load time before kill *)
  deadline_every : int;  (** every k-th job gets a tight deadline; 0 never *)
  corrupt_spec_every : int;  (** every k-th cycle poisons one spec; 0 never *)
  recovery_bound_s : float;
  log : out_channel option;
}

let default_config ~dir =
  {
    dir;
    cycles = 4;
    max_cycles = 12;
    min_faults = 0;
    jobs_per_cycle = 6;
    rounds = 4000;
    n = 64;
    workers = 2;
    checkpoint_every = 16;
    seed = 42;
    io_fault_p = 0.02;
    kill_delay_s = (0.10, 0.45);
    deadline_every = 5;
    corrupt_spec_every = 3;
    recovery_bound_s = 30.;
    log = None;
  }

type result = {
  cycles_run : int;
  kills : int;
  corruptions : int;
  io_faults : int;
      (** injected shim faults observed via stats polling — a lower
          bound: faults landing after the last poll of a killed life go
          uncounted *)
  faults_total : int;
  jobs_acked : int;
  jobs_done : int;
  jobs_failed : int;
  acked_jobs_lost : int;
  identity_checked : int;
  identity_violations : int;
  quarantined_files : int;
  recovery_s : float array;  (** one sample per daemon (re)start *)
  recovery_bound_s : float;
  recovery_ok : bool;
}

let logf cfg fmt =
  Printf.ksprintf
    (fun line ->
      match cfg.log with
      | None -> ()
      | Some oc ->
          output_string oc line;
          output_char oc '\n';
          flush oc)
    fmt

(* ---------------------------------------------------------------- *)
(* Daemon lifecycle                                                  *)
(* ---------------------------------------------------------------- *)

let socket_of cfg = Filename.concat cfg.dir "chaos.sock"
let state_of cfg = Filename.concat cfg.dir "state"

let daemon_config cfg ~failpoints =
  {
    (Daemon.default_config ~socket:(socket_of cfg) ~state_dir:(state_of cfg))
    with
    Daemon.workers = cfg.workers;
    queue_depth = 2 * cfg.jobs_per_cycle;
    checkpoint_every = cfg.checkpoint_every;
    io_failpoints = failpoints;
  }

(* Forked child, so SIGKILL is a machine-failure-grade stop: no atexit,
   no finalizers, no flush. *)
let spawn_daemon dcfg =
  match Unix.fork () with
  | 0 ->
      (try Daemon.run dcfg with _ -> ());
      Stdlib.exit 0
  | pid -> pid

(* Probabilistic io.* failpoints for one daemon life.  rename gets half
   the rate of write/fsync: a failed rename aborts the whole atomic
   publication, so it is the most disruptive trip. *)
let life_failpoints cfg ~life =
  if cfg.io_fault_p <= 0. then Failpoint.noop
  else
    let seed name =
      Int64.of_int ((cfg.seed * 1_000_003) + (life * 7919) + Hashtbl.hash name)
    in
    Failpoint.of_specs
      [
        {
          Failpoint.name = "io.write";
          trigger = Prob { p = cfg.io_fault_p; seed = seed "io.write" };
        };
        {
          Failpoint.name = "io.fsync";
          trigger = Prob { p = cfg.io_fault_p; seed = seed "io.fsync" };
        };
        {
          Failpoint.name = "io.rename";
          trigger = Prob { p = cfg.io_fault_p /. 2.; seed = seed "io.rename" };
        };
      ]

(* Spawn + wait until the daemon answers, returning (pid, client,
   recovery seconds).  The connect retry window is the recovery bound:
   blowing it is a campaign failure, not a hang. *)
let start_and_time cfg ~failpoints =
  let t0 = Unix.gettimeofday () in
  let pid = spawn_daemon (daemon_config cfg ~failpoints) in
  let c =
    Client.connect ~retry_for:cfg.recovery_bound_s ~socket:(socket_of cfg) ()
  in
  Client.ping c;
  (pid, c, Unix.gettimeofday () -. t0)

let reap pid = ignore (Unix.waitpid [] pid)

let stats_int c key =
  match List.assoc_opt key (Client.stats c) with
  | Some (Jsonl.Int k) -> k
  | _ -> 0

(* ---------------------------------------------------------------- *)
(* Corruption                                                        *)
(* ---------------------------------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let flip_bit ~rng path =
  let body = read_file path in
  if String.length body = 0 then false
  else begin
    let i = Rng.int_below rng (String.length body) in
    let bytes = Bytes.of_string body in
    Bytes.set bytes i
      (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl Rng.int_below rng 8)));
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_bytes oc bytes);
    true
  end

let truncate_file ~rng path =
  match (Unix.stat path).Unix.st_size with
  | 0 -> false
  | size ->
      Unix.truncate path (Rng.int_below rng size);
      true

(* While the daemon is dead: poison surviving checkpoints (each with
   probability 1/2 — flip a bit or cut the tail) and, on scheduled
   cycles, one pending spec.  Returns how many files were damaged. *)
let corrupt_state cfg ~rng ~cycle =
  let state_dir = state_of cfg in
  let entries = try Sys.readdir state_dir with Sys_error _ -> [||] in
  let damaged = ref 0 in
  let damage path =
    let did =
      if Rng.bool rng then flip_bit ~rng path else truncate_file ~rng path
    in
    if did then incr damaged;
    did
  in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".ckpt" && Rng.bool rng then
        ignore (damage (Filename.concat state_dir name)))
    entries;
  if cfg.corrupt_spec_every > 0 && (cycle + 1) mod cfg.corrupt_spec_every = 0
  then begin
    (* One acked-but-unfinished spec: the restarted daemon must turn it
       into a durable failure, never a silent disappearance. *)
    let pending =
      Array.to_list entries
      |> List.filter (fun name ->
             Filename.check_suffix name ".job"
             && not
                  (Sys.file_exists
                     (Filename.concat state_dir
                        (Filename.chop_suffix name ".job" ^ ".result"))))
      |> List.sort String.compare
    in
    match pending with
    | [] -> ()
    | names ->
        let name = List.nth names (Rng.int_below rng (List.length names)) in
        ignore (damage (Filename.concat state_dir name))
  end;
  !damaged

(* ---------------------------------------------------------------- *)
(* Workload                                                          *)
(* ---------------------------------------------------------------- *)

let job_spec cfg ~rng ~index =
  let n = cfg.n in
  let init, m =
    match Rng.int_below rng 4 with
    | 0 -> ("uniform", n)
    | 1 -> ("pile", Rng.int_in_range rng ~lo:1 ~hi:(2 * n))
    | 2 -> ("balanced", Rng.int_in_range rng ~lo:1 ~hi:(2 * n))
    | _ -> ("random", n)
  in
  let engine = if Rng.bool rng then Protocol.Balls else Protocol.Counts in
  let deadline_s =
    (* An occasional tight deadline: whichever way the race between the
       watchdog and job completion goes, the job must stay accounted. *)
    if cfg.deadline_every > 0 && (index + 1) mod cfg.deadline_every = 0 then
      0.05 +. (0.1 *. Rng.float_unit rng)
    else infinity
  in
  {
    Protocol.n;
    m;
    rounds = cfg.rounds;
    seed = Rng.int_below rng 1_000_000_000;
    init;
    engine;
    deadline_s;
  }

(* ---------------------------------------------------------------- *)
(* Verification                                                      *)
(* ---------------------------------------------------------------- *)

(* Solo re-execution in a clean directory: the reference bytes a
   daemon-produced result must match.  Runs in this (fault-free)
   process — deterministic, so one run suffices. *)
let solo_result ~scratch ~id spec =
  let state_dir = Filename.concat scratch ("solo-" ^ id) in
  (try Unix.mkdir state_dir 0o755 with Unix.Unix_error _ -> ());
  let fields = Job.run ~state_dir ~checkpoint_every:max_int ~id spec in
  ignore fields;
  let body = read_file (Job.result_path ~state_dir ~id) in
  (try Sys.remove (Job.result_path ~state_dir ~id) with Sys_error _ -> ());
  (try Sys.remove (Job.spec_path ~state_dir ~id) with Sys_error _ -> ());
  (try Unix.rmdir state_dir with Unix.Unix_error _ -> ());
  body

(* ---------------------------------------------------------------- *)
(* The campaign                                                      *)
(* ---------------------------------------------------------------- *)

let run cfg =
  if cfg.cycles < 1 then invalid_arg "Chaos.run: cycles must be at least 1";
  if cfg.jobs_per_cycle < 1 then
    invalid_arg "Chaos.run: jobs_per_cycle must be at least 1";
  if cfg.max_cycles < cfg.cycles then
    invalid_arg "Chaos.run: max_cycles must be at least cycles";
  let rng = Rng.create ~seed:(Int64.of_int cfg.seed) () in
  (try Unix.mkdir cfg.dir 0o755 with Unix.Unix_error _ -> ());
  let acked = ref [] in
  (* id -> spec *)
  let kills = ref 0 in
  let corruptions = ref 0 in
  let io_faults = ref 0 in
  let recovery = ref [] in
  let faults_total () = !kills + !corruptions + !io_faults in
  let cycle = ref 0 in
  while
    !cycle < cfg.cycles
    || (faults_total () < cfg.min_faults && !cycle < cfg.max_cycles)
  do
    let life = !cycle in
    let pid, c, rec_s =
      start_and_time cfg ~failpoints:(life_failpoints cfg ~life)
    in
    recovery := rec_s :: !recovery;
    logf cfg "chaos: cycle %d: daemon up in %.3f s" life rec_s;
    (* Closed-loop batch: every ack is a durability promise we hold the
       store to at the end. *)
    for j = 0 to cfg.jobs_per_cycle - 1 do
      let spec = job_spec cfg ~rng ~index:((life * cfg.jobs_per_cycle) + j) in
      match Client.submit_wait c spec with
      | id -> acked := (id, spec) :: !acked
      | exception Failure _ -> ()
    done;
    (* Let it burn for a seeded interval, sampling the fault counter as
       we go (the counter dies with the process). *)
    let lo, hi = cfg.kill_delay_s in
    let delay = lo +. ((hi -. lo) *. Rng.float_unit rng) in
    let seen = ref 0 in
    let slices = 5 in
    (try
       for _ = 1 to slices do
         Unix.sleepf (delay /. float_of_int slices);
         seen := max !seen (stats_int c "io_faults_injected")
       done
     with Failure _ -> ());
    io_faults := !io_faults + !seen;
    (* The hammer. *)
    Unix.kill pid Sys.sigkill;
    reap pid;
    (try Client.close c with Failure _ -> ());
    incr kills;
    let damaged = corrupt_state cfg ~rng ~cycle:life in
    corruptions := !corruptions + damaged;
    logf cfg "chaos: cycle %d: killed after %.2f s, %d file(s) corrupted"
      life delay damaged;
    incr cycle
  done;
  (* Final life, fault-free: recover everything and drain. *)
  let pid, c, rec_s = start_and_time cfg ~failpoints:Failpoint.noop in
  recovery := rec_s :: !recovery;
  logf cfg "chaos: final daemon up in %.3f s; draining %d acked job(s)"
    rec_s (List.length !acked);
  let deadline = Unix.gettimeofday () +. (4. *. cfg.recovery_bound_s) in
  let state_dir = state_of cfg in
  let terminal id =
    Sys.file_exists (Job.result_path ~state_dir ~id)
    || Sys.file_exists (Job.failed_path ~state_dir ~id)
  in
  let rec drain ids =
    match List.filter (fun (id, _) -> not (terminal id)) ids with
    | [] -> ()
    | left when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        drain left
    | _ -> () (* timed out: the disk check below records the loss *)
  in
  drain !acked;
  io_faults := !io_faults + stats_int c "io_faults_injected";
  Client.shutdown c;
  Client.close c;
  reap pid;
  (* Invariant sweep over the durable record. *)
  let jobs_done = ref 0 in
  let jobs_failed = ref 0 in
  let lost = ref 0 in
  let identity_checked = ref 0 in
  let identity_violations = ref 0 in
  List.iter
    (fun (id, spec) ->
      if Sys.file_exists (Job.result_path ~state_dir ~id) then begin
        incr jobs_done;
        incr identity_checked;
        let daemon_body = read_file (Job.result_path ~state_dir ~id) in
        let solo_body = solo_result ~scratch:cfg.dir ~id spec in
        if not (String.equal daemon_body solo_body) then begin
          incr identity_violations;
          logf cfg "chaos: IDENTITY VIOLATION on %s" id
        end
      end
      else if Sys.file_exists (Job.failed_path ~state_dir ~id) then
        incr jobs_failed
      else begin
        incr lost;
        logf cfg "chaos: ACKED JOB LOST: %s" id
      end)
    (List.rev !acked);
  let quarantined_files =
    match Sys.readdir (Job.quarantine_dir ~state_dir) with
    | entries -> Array.length entries
    | exception Sys_error _ -> 0
  in
  let recovery_s = Array.of_list (List.rev !recovery) in
  {
    cycles_run = !cycle;
    kills = !kills;
    corruptions = !corruptions;
    io_faults = !io_faults;
    faults_total = faults_total ();
    jobs_acked = List.length !acked;
    jobs_done = !jobs_done;
    jobs_failed = !jobs_failed;
    acked_jobs_lost = !lost;
    identity_checked = !identity_checked;
    identity_violations = !identity_violations;
    quarantined_files;
    recovery_s;
    recovery_bound_s = cfg.recovery_bound_s;
    recovery_ok =
      Array.for_all (fun s -> s <= cfg.recovery_bound_s) recovery_s;
  }

let quantile arr q =
  if Array.length arr = 0 then nan else Rbb_stats.Quantile.quantile arr q

let mean arr =
  if Array.length arr = 0 then nan
  else Array.fold_left ( +. ) 0. arr /. float_of_int (Array.length arr)

let to_fields r =
  [
    ("schema", Jsonl.String "rbb.bench-chaos/1");
    ("cycles", Jsonl.Int r.cycles_run);
    ("kills", Jsonl.Int r.kills);
    ("corruptions", Jsonl.Int r.corruptions);
    ("io_faults", Jsonl.Int r.io_faults);
    ("faults_total", Jsonl.Int r.faults_total);
    ("jobs_acked", Jsonl.Int r.jobs_acked);
    ("jobs_done", Jsonl.Int r.jobs_done);
    ("jobs_failed", Jsonl.Int r.jobs_failed);
    ("acked_jobs_lost", Jsonl.Int r.acked_jobs_lost);
    ("identity_checked", Jsonl.Int r.identity_checked);
    ("identity_violations", Jsonl.Int r.identity_violations);
    ("quarantined_files", Jsonl.Int r.quarantined_files);
    ("recovery_samples", Jsonl.Int (Array.length r.recovery_s));
    ("recovery_mean_s", Jsonl.Float (mean r.recovery_s));
    ("recovery_p50_s", Jsonl.Float (quantile r.recovery_s 0.5));
    ("recovery_p99_s", Jsonl.Float (quantile r.recovery_s 0.99));
    ("recovery_bound_s", Jsonl.Float r.recovery_bound_s);
    ("recovery_ok", Jsonl.Bool r.recovery_ok);
  ]

let passed r =
  r.acked_jobs_lost = 0 && r.identity_violations = 0 && r.recovery_ok
