(** Immutable graphs in compressed-sparse-row form.

    Undirected simple graphs over vertices [0 .. n-1]; each undirected
    edge is stored in both directions.  CSR keeps neighbour scans and
    uniform neighbour sampling cache-friendly, which matters because the
    constrained-random-walk experiments sample millions of neighbours
    per run.

    The complete graph is special-cased ({!complete}) so the
    balls-into-bins workloads never materialize Θ(n²) edges. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the undirected graph on [n] vertices with
    the given edge list.  Self-loops and duplicate edges are rejected.
    @raise Invalid_argument on out-of-range endpoints, self-loops or
    duplicates. *)

val complete : int -> t
(** [complete n] is K_n, represented implicitly in O(1) space.
    @raise Invalid_argument if [n < 1]. *)

val n : t -> int
(** Number of vertices. *)

val edge_count : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int
(** [degree g u] is the number of neighbours of [u]. *)

val is_complete_repr : t -> bool
(** Whether [t] uses the implicit K_n representation. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g u f] applies [f] to every neighbour of [u]. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> 'a) -> 'a

val neighbor : t -> int -> int -> int
(** [neighbor g u i] is the [i]-th neighbour of [u] in storage order.
    @raise Invalid_argument if [i] is out of range. *)

val random_neighbor : t -> Rbb_prng.Rng.t -> int -> int
(** [random_neighbor g rng u] is a uniformly random neighbour of [u].
    For the implicit complete graph this draws uniformly from
    [[0, n) \ {u}].
    @raise Invalid_argument if [u] has no neighbour. *)

val random_vertex_including_self : t -> Rbb_prng.Rng.t -> int -> int
(** [random_vertex_including_self g rng u] is uniform over the closed
    neighbourhood of [u] when [g] is the implicit complete graph —
    i.e. uniform over all of [[0, n)], the balls-into-bins law — and
    uniform over neighbours-plus-self otherwise. *)

val has_edge : t -> int -> int -> bool
(** [has_edge g u v]: adjacency test (binary search; O(log deg)). *)

val pp : Format.formatter -> t -> unit
