type repr =
  | Explicit of { offsets : int array; targets : int array }
  | Complete  (* K_n without materialized edges *)

type t = { n : int; edges : int; repr : repr }

let of_edges ~n edges =
  if n < 0 then invalid_arg "Csr.of_edges: negative n";
  let seen = Hashtbl.create (2 * List.length edges) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Csr.of_edges: endpoint out of range";
      if u = v then invalid_arg "Csr.of_edges: self-loop";
      let key = if u < v then (u, v) else (v, u) in
      if Hashtbl.mem seen key then invalid_arg "Csr.of_edges: duplicate edge";
      Hashtbl.replace seen key ())
    edges;
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + deg.(u)
  done;
  let targets = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      targets.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      targets.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  (* Sorted adjacency enables binary-search membership tests. *)
  for u = 0 to n - 1 do
    let lo = offsets.(u) and hi = offsets.(u + 1) in
    let slice = Array.sub targets lo (hi - lo) in
    Array.sort compare slice;
    Array.blit slice 0 targets lo (hi - lo)
  done;
  { n; edges = List.length edges; repr = Explicit { offsets; targets } }

let complete n =
  if n < 1 then invalid_arg "Csr.complete: n < 1";
  { n; edges = n * (n - 1) / 2; repr = Complete }

let n t = t.n
let edge_count t = t.edges

let degree t u =
  if u < 0 || u >= t.n then invalid_arg "Csr.degree: vertex out of range";
  match t.repr with
  | Complete -> t.n - 1
  | Explicit { offsets; _ } -> offsets.(u + 1) - offsets.(u)

let is_complete_repr t = match t.repr with Complete -> true | Explicit _ -> false

let iter_neighbors t u f =
  match t.repr with
  | Complete ->
      for v = 0 to t.n - 1 do
        if v <> u then f v
      done
  | Explicit { offsets; targets } ->
      for i = offsets.(u) to offsets.(u + 1) - 1 do
        f targets.(i)
      done

let fold_neighbors t u ~init ~f =
  let acc = ref init in
  iter_neighbors t u (fun v -> acc := f !acc v);
  !acc

let neighbor t u i =
  match t.repr with
  | Complete ->
      if i < 0 || i >= t.n - 1 then invalid_arg "Csr.neighbor: index out of range";
      if i < u then i else i + 1
  | Explicit { offsets; targets } ->
      let lo = offsets.(u) in
      if i < 0 || lo + i >= offsets.(u + 1) then
        invalid_arg "Csr.neighbor: index out of range";
      targets.(lo + i)

let random_neighbor t rng u =
  let d = degree t u in
  if d = 0 then invalid_arg "Csr.random_neighbor: isolated vertex";
  neighbor t u (Rbb_prng.Rng.int_below rng d)

let random_vertex_including_self t rng u =
  match t.repr with
  | Complete -> Rbb_prng.Rng.int_below rng t.n
  | Explicit _ ->
      let d = degree t u in
      let i = Rbb_prng.Rng.int_below rng (d + 1) in
      if i = d then u else neighbor t u i

let has_edge t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then false
  else if u = v then false
  else
    match t.repr with
    | Complete -> true
    | Explicit { offsets; targets } ->
        let lo = ref offsets.(u) and hi = ref (offsets.(u + 1) - 1) in
        let found = ref false in
        while (not !found) && !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if targets.(mid) = v then found := true
          else if targets.(mid) < v then lo := mid + 1
          else hi := mid - 1
        done;
        !found

let pp ppf t =
  Format.fprintf ppf "graph(n=%d, m=%d%s)" t.n t.edges
    (if is_complete_repr t then ", complete" else "")
