(** Standard graph families for the general-graph experiments (§5 of the
    paper: the open question about regular topologies). *)

val complete : int -> Csr.t
(** K_n (implicit representation). *)

val cycle : int -> Csr.t
(** The n-cycle (ring); the paper singles out rings as already hard.
    @raise Invalid_argument if [n < 3]. *)

val path : int -> Csr.t
(** The path on [n] vertices. @raise Invalid_argument if [n < 2]. *)

val torus2d : rows:int -> cols:int -> Csr.t
(** 2-D torus (grid with wraparound); 4-regular when both sides ≥ 3.
    @raise Invalid_argument if [rows < 3] or [cols < 3]. *)

val hypercube : int -> Csr.t
(** [hypercube d] is the d-dimensional Boolean hypercube on [2^d]
    vertices. @raise Invalid_argument unless [1 <= d <= 20]. *)

val star : int -> Csr.t
(** Star with one hub and [n - 1] leaves: the extreme irregular case.
    @raise Invalid_argument if [n < 2]. *)

val complete_bipartite : int -> int -> Csr.t
(** [complete_bipartite a b] is K_{a,b}.
    @raise Invalid_argument if [a < 1] or [b < 1]. *)

val random_regular : Rbb_prng.Rng.t -> n:int -> d:int -> Csr.t
(** [random_regular rng ~n ~d] samples a simple d-regular graph by
    Steger–Wormald stub pairing (local retry on loops/duplicates,
    asymptotically uniform; practical for [d] up to about [n^(1/3)]).
    @raise Invalid_argument unless [n*d] even, [0 < d < n]. *)

val erdos_renyi : Rbb_prng.Rng.t -> n:int -> p:float -> Csr.t
(** [erdos_renyi rng ~n ~p] samples G(n, p).
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val binary_tree : int -> Csr.t
(** [binary_tree n] is the complete binary tree on vertices [0..n-1]
    (vertex [i]'s children are [2i+1], [2i+2]).
    @raise Invalid_argument if [n < 2]. *)

val grid2d : rows:int -> cols:int -> Csr.t
(** Rectangular grid without wraparound (boundary vertices have lower
    degree — a mildly irregular topology).
    @raise Invalid_argument if either side is < 2. *)

val barbell : int -> Csr.t
(** [barbell k] is two k-cliques joined by a single bridge edge
    (n = 2k): the classic bottleneck graph for walk-based protocols.
    @raise Invalid_argument if [k < 2]. *)

val circulant : n:int -> jumps:int list -> Csr.t
(** [circulant ~n ~jumps] connects [i] to [i ± j mod n] for each jump
    [j]: a cheap family of regular graphs with tunable degree (the ring
    is [circulant ~jumps:[1]]).
    @raise Invalid_argument on empty jumps, a jump outside
    [1 .. n/2], or duplicate jumps. *)
