(** Structural sanity checks on graphs; used both in tests and to
    validate randomly generated topologies before an experiment runs. *)

val is_connected : Csr.t -> bool
(** BFS reachability from vertex 0; a 0-vertex graph is connected. *)

val is_regular : Csr.t -> int option
(** [Some d] if every vertex has degree [d], else [None]. *)

val min_degree : Csr.t -> int
val max_degree : Csr.t -> int

val degree_histogram : Csr.t -> (int * int) list
(** [(degree, multiplicity)] pairs, ascending by degree. *)

val diameter_upper_bound : Csr.t -> int
(** Eccentricity of vertex 0 doubled — a cheap upper bound on the
    diameter, enough for scaling sanity checks.
    @raise Invalid_argument on a disconnected graph. *)
