let bfs_depths g start =
  let n = Csr.n g in
  let depth = Array.make n (-1) in
  let queue = Queue.create () in
  depth.(start) <- 0;
  Queue.push start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Csr.iter_neighbors g u (fun v ->
        if depth.(v) < 0 then begin
          depth.(v) <- depth.(u) + 1;
          Queue.push v queue
        end)
  done;
  depth

let is_connected g =
  let n = Csr.n g in
  n = 0
  || begin
       let depth = bfs_depths g 0 in
       Array.for_all (fun d -> d >= 0) depth
     end

let is_regular g =
  let n = Csr.n g in
  if n = 0 then Some 0
  else begin
    let d = Csr.degree g 0 in
    let rec check u = if u >= n then Some d else if Csr.degree g u = d then check (u + 1) else None in
    check 1
  end

let fold_degrees g ~init ~f =
  let acc = ref init in
  for u = 0 to Csr.n g - 1 do
    acc := f !acc (Csr.degree g u)
  done;
  !acc

let min_degree g =
  if Csr.n g = 0 then 0 else fold_degrees g ~init:max_int ~f:Stdlib.min

let max_degree g = fold_degrees g ~init:0 ~f:Stdlib.max

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for u = 0 to Csr.n g - 1 do
    let d = Csr.degree g u in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare

let diameter_upper_bound g =
  if Csr.n g = 0 then 0
  else begin
    let depth = bfs_depths g 0 in
    let ecc =
      Array.fold_left
        (fun acc d ->
          if d < 0 then invalid_arg "Check.diameter_upper_bound: disconnected graph"
          else Stdlib.max acc d)
        0 depth
    in
    2 * ecc
  end
