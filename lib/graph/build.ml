let complete n = Csr.complete n

let cycle n =
  if n < 3 then invalid_arg "Build.cycle: n < 3";
  let edges = List.init n (fun i -> (i, (i + 1) mod n)) in
  Csr.of_edges ~n edges

let path n =
  if n < 2 then invalid_arg "Build.path: n < 2";
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  Csr.of_edges ~n edges

let torus2d ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Build.torus2d: sides must be >= 3";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (id r c, id r ((c + 1) mod cols)) :: !edges;
      edges := (id r c, id ((r + 1) mod rows) c) :: !edges
    done
  done;
  Csr.of_edges ~n:(rows * cols) !edges

let hypercube d =
  if d < 1 || d > 20 then invalid_arg "Build.hypercube: d out of [1,20]";
  let n = 1 lsl d in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for b = 0 to d - 1 do
      let v = u lxor (1 lsl b) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Csr.of_edges ~n !edges

let star n =
  if n < 2 then invalid_arg "Build.star: n < 2";
  Csr.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Build.complete_bipartite: sides must be >= 1";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = 0 to b - 1 do
      edges := (u, a + v) :: !edges
    done
  done;
  Csr.of_edges ~n:(a + b) !edges

let random_regular rng ~n ~d =
  if d <= 0 || d >= n then invalid_arg "Build.random_regular: need 0 < d < n";
  if n * d mod 2 <> 0 then invalid_arg "Build.random_regular: n*d must be even";
  (* Steger–Wormald pairing: repeatedly match two random remaining
     stubs, rejecting only the offending pair on a loop or duplicate.
     Whole-graph rejection would need e^{Θ(d²)} restarts, hopeless
     beyond d ~ 4; local retries make d up to ~n^(1/3) practical and
     stay asymptotically uniform. *)
  let total = n * d in
  let max_restarts = 1000 in
  let rec attempt restart =
    if restart > max_restarts then
      failwith "Build.random_regular: too many restarts (d too close to n?)";
    let stubs = Array.make total 0 in
    let idx = ref 0 in
    for u = 0 to n - 1 do
      for _ = 1 to d do
        stubs.(!idx) <- u;
        incr idx
      done
    done;
    let remaining = ref total in
    let seen = Hashtbl.create (2 * total) in
    let edges = ref [] in
    let stuck = ref 0 in
    let failed = ref false in
    (* Draw a stub by swapping it to the tail, so live stubs stay in a
       prefix. *)
    let draw_at i =
      let j = Rbb_prng.Rng.int_below rng i in
      let v = stubs.(j) in
      stubs.(j) <- stubs.(i - 1);
      stubs.(i - 1) <- v;
      v
    in
    while (not !failed) && !remaining > 0 do
      let u = draw_at !remaining in
      let v = draw_at (!remaining - 1) in
      let key = if u < v then (u, v) else (v, u) in
      if u = v || Hashtbl.mem seen key then begin
        (* Put both stubs back in play (they sit at the tail): just do
           not shrink [remaining]; count consecutive failures so a
           hopeless tail (e.g. all remaining stubs on one vertex)
           triggers a restart. *)
        incr stuck;
        if !stuck > 200 then failed := true
      end
      else begin
        stuck := 0;
        Hashtbl.replace seen key ();
        edges := (u, v) :: !edges;
        remaining := !remaining - 2
      end
    done;
    if !failed then attempt (restart + 1) else Csr.of_edges ~n !edges
  in
  attempt 1

let binary_tree n =
  if n < 2 then invalid_arg "Build.binary_tree: n < 2";
  let edges = ref [] in
  for i = 0 to n - 1 do
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    if l < n then edges := (i, l) :: !edges;
    if r < n then edges := (i, r) :: !edges
  done;
  Csr.of_edges ~n !edges

let grid2d ~rows ~cols =
  if rows < 2 || cols < 2 then invalid_arg "Build.grid2d: sides must be >= 2";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Csr.of_edges ~n:(rows * cols) !edges

let barbell k =
  if k < 2 then invalid_arg "Build.barbell: k < 2";
  let edges = ref [] in
  let clique offset =
    for u = 0 to k - 1 do
      for v = u + 1 to k - 1 do
        edges := (offset + u, offset + v) :: !edges
      done
    done
  in
  clique 0;
  clique k;
  (* Bridge between the last vertex of the left clique and the first of
     the right one. *)
  edges := (k - 1, k) :: !edges;
  Csr.of_edges ~n:(2 * k) !edges

let circulant ~n ~jumps =
  if jumps = [] then invalid_arg "Build.circulant: no jumps";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun j ->
      if j < 1 || 2 * j > n then
        invalid_arg "Build.circulant: jump outside [1, n/2]";
      if Hashtbl.mem seen j then invalid_arg "Build.circulant: duplicate jump";
      Hashtbl.replace seen j ())
    jumps;
  let edges = ref [] in
  List.iter
    (fun j ->
      (* For j = n/2 each chord appears once; otherwise iterate all i. *)
      let upto = if 2 * j = n then (n / 2) - 1 else n - 1 in
      for i = 0 to upto do
        edges := (i, (i + j) mod n) :: !edges
      done)
    jumps;
  Csr.of_edges ~n !edges

let erdos_renyi rng ~n ~p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Build.erdos_renyi: p not in [0,1]";
  if n < 1 then invalid_arg "Build.erdos_renyi: n < 1";
  (* Geometric edge skipping: O(n + m) instead of O(n²) for sparse p. *)
  let edges = ref [] in
  if p > 0. then begin
    if p = 1. then
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          edges := (u, v) :: !edges
        done
      done
    else begin
      let total = n * (n - 1) / 2 in
      let pos = ref (-1) in
      let continue = ref true in
      while !continue do
        let skip = Rbb_prng.Sampler.geometric rng ~p in
        pos := !pos + 1 + skip;
        if !pos >= total then continue := false
        else begin
          (* Invert the linear index into the (u, v) pair, u < v. *)
          let k = ref !pos and u = ref 0 in
          while !k >= n - 1 - !u do
            k := !k - (n - 1 - !u);
            incr u
          done;
          edges := (!u, !u + 1 + !k) :: !edges
        end
      done
    end
  end;
  Csr.of_edges ~n !edges
