(* Power iteration for the lazy walk P = (I + D^-1 A)/2.

   The walk is reversible with stationary weight pi(u) proportional to
   deg(u).  We work in the pi-weighted inner product, where P is
   self-adjoint, and deflate the top eigenvector (the constant function)
   so the iteration converges to lambda_2. *)

let lambda2_lazy_walk ?(iterations = 10_000) ?(tol = 1e-10) g =
  let n = Csr.n g in
  if n = 0 then invalid_arg "Spectral.lambda2_lazy_walk: empty graph";
  if n = 1 then 0.
  else begin
    let deg = Array.init n (Csr.degree g) in
    Array.iteri
      (fun u d ->
        if d = 0 then
          invalid_arg
            (Printf.sprintf "Spectral.lambda2_lazy_walk: vertex %d is isolated" u))
      deg;
    let total_degree = float_of_int (Array.fold_left ( + ) 0 deg) in
    let pi = Array.map (fun d -> float_of_int d /. total_degree) deg in
    (* Apply the lazy walk matrix to a function on vertices:
       (Pf)(u) = f(u)/2 + (1/(2 deg u)) sum_{v ~ u} f(v). *)
    let apply f =
      Array.init n (fun u ->
          let acc = ref 0. in
          Csr.iter_neighbors g u (fun v -> acc := !acc +. f.(v));
          (0.5 *. f.(u)) +. (0.5 *. !acc /. float_of_int deg.(u)))
    in
    let dot_pi a b =
      let acc = ref 0. in
      for u = 0 to n - 1 do
        acc := !acc +. (pi.(u) *. a.(u) *. b.(u))
      done;
      !acc
    in
    let deflate f =
      (* Subtract the pi-projection onto the constant eigenvector. *)
      let mean = dot_pi f (Array.make n 1.) in
      Array.map (fun x -> x -. mean) f
    in
    let normalize f =
      let norm = Float.sqrt (dot_pi f f) in
      if norm = 0. then None else Some (Array.map (fun x -> x /. norm) f)
    in
    (* Deterministic, aperiodic start vector. *)
    let v0 = Array.init n (fun u -> Float.sin (float_of_int (u + 1))) in
    let rec iterate v estimate k =
      if k >= iterations then estimate
      else begin
        let w = deflate (apply v) in
        match normalize w with
        | None -> 0. (* the deflated space is annihilated: lambda2 = 0 *)
        | Some w' ->
            (* Rayleigh quotient of the normalized iterate. *)
            let next = dot_pi w' (apply w') in
            if Float.abs (next -. estimate) < tol then next
            else iterate w' next (k + 1)
      end
    in
    match normalize (deflate v0) with
    | None -> 0.
    | Some v -> Stdlib.max 0. (Stdlib.min 1. (iterate v 2. 0))
  end

let spectral_gap ?iterations ?tol g = 1. -. lambda2_lazy_walk ?iterations ?tol g

let relaxation_time ?iterations ?tol g =
  let gap = spectral_gap ?iterations ?tol g in
  if gap <= 0. then infinity else 1. /. gap
