(** Spectral estimates for random walks on graphs.

    The paper's §5 conjecture concerns regular graphs, where the mixing
    of the underlying walks — governed by the spectral gap of the walk
    matrix — is the natural structural parameter.  This module
    estimates the second-largest eigenvalue modulus of the {e lazy}
    random-walk matrix [P = (I + D⁻¹A)/2] by power iteration on the
    space orthogonal to the stationary distribution, and derives the
    relaxation-time scale experiment E28 correlates with max loads. *)

val lambda2_lazy_walk : ?iterations:int -> ?tol:float -> Csr.t -> float
(** [lambda2_lazy_walk g] estimates the second-largest eigenvalue of the
    lazy walk matrix of [g] (all eigenvalues of the lazy walk are
    non-negative, so this is also the SLEM).  Deterministic power
    iteration from a fixed start vector, deflating the stationary
    direction each step; at most [iterations] (default 10 000) rounds or
    until successive estimates differ by less than [tol] (default
    1e-10).
    @raise Invalid_argument on an empty graph or a graph with an
    isolated vertex. *)

val spectral_gap : ?iterations:int -> ?tol:float -> Csr.t -> float
(** [1 - lambda2]. *)

val relaxation_time : ?iterations:int -> ?tol:float -> Csr.t -> float
(** [1 / gap] — the walk's intrinsic time scale. *)
