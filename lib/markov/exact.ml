let prob_zero_arrivals chain ~init ~bin ~zero_rounds =
  if bin < 0 || bin >= Chain.n chain then
    invalid_arg "Exact.prob_zero_arrivals: bin out of range";
  List.iter
    (fun r -> if r <= 0 then invalid_arg "Exact.prob_zero_arrivals: rounds are 1-based")
    zero_rounds;
  let max_round = List.fold_left Stdlib.max 0 zero_rounds in
  let size = Chain.num_states chain in
  let dist = Array.make size 0. in
  dist.(Chain.state_index chain init) <- 1.;
  let current = ref dist in
  for round = 1 to max_round do
    let constrained = List.mem round zero_rounds in
    let out = Array.make size 0. in
    Array.iteri
      (fun s p ->
        if p > 0. then
          Chain.iter_transitions chain s (fun a prob ns ->
              if (not constrained) || a.(bin) = 0 then
                out.(ns) <- out.(ns) +. (p *. prob)))
      !current;
    current := out
  done;
  Array.fold_left ( +. ) 0. !current

type appendix_b = {
  p_x1_zero : float;
  p_x2_zero : float;
  p_joint_zero : float;
  product : float;
  violates_negative_association : bool;
}

let appendix_b () =
  let chain = Chain.create ~n:2 ~m:2 in
  let init = [| 1; 1 |] in
  let p1 = prob_zero_arrivals chain ~init ~bin:0 ~zero_rounds:[ 1 ] in
  let p2 = prob_zero_arrivals chain ~init ~bin:0 ~zero_rounds:[ 2 ] in
  let joint = prob_zero_arrivals chain ~init ~bin:0 ~zero_rounds:[ 1; 2 ] in
  let product = p1 *. p2 in
  {
    p_x1_zero = p1;
    p_x2_zero = p2;
    p_joint_zero = joint;
    product;
    violates_negative_association = joint > product;
  }

let covariance_of_zero_indicators chain ~init ~bin ~round_a ~round_b =
  let pa = prob_zero_arrivals chain ~init ~bin ~zero_rounds:[ round_a ] in
  let pb = prob_zero_arrivals chain ~init ~bin ~zero_rounds:[ round_b ] in
  let joint = prob_zero_arrivals chain ~init ~bin ~zero_rounds:[ round_a; round_b ] in
  joint -. (pa *. pb)
