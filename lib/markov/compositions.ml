let binomial_coefficient n k =
  if k < 0 || n < 0 || k > n then invalid_arg "binomial_coefficient: bad arguments";
  let k = Stdlib.min k (n - k) in
  let acc = ref 1 in
  for i = 1 to k do
    (* Multiply before dividing keeps the intermediate integral; check
       for overflow on the multiply. *)
    let next = !acc * (n - k + i) in
    if next / (n - k + i) <> !acc then
      invalid_arg "binomial_coefficient: overflow";
    acc := next / i
  done;
  !acc

let count ~total ~parts =
  if total < 0 || parts <= 0 then invalid_arg "Compositions.count: bad arguments";
  binomial_coefficient (total + parts - 1) (parts - 1)

let iter ~total ~parts f =
  if total < 0 || parts <= 0 then invalid_arg "Compositions.iter: bad arguments";
  let buf = Array.make parts 0 in
  (* Fill position i with every value 0..remaining; the last position
     takes whatever is left, giving lexicographic order. *)
  let rec fill i remaining =
    if i = parts - 1 then begin
      buf.(i) <- remaining;
      f buf
    end
    else
      for v = 0 to remaining do
        buf.(i) <- v;
        fill (i + 1) (remaining - v)
      done
  in
  fill 0 total

let enumerate ~total ~parts =
  let out = ref [] in
  iter ~total ~parts (fun c -> out := Array.copy c :: !out);
  Array.of_list (List.rev !out)
