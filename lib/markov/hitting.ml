let expected_hitting_times ?(tol = 1e-10) ?(max_iters = 1_000_000) chain ~target =
  let size = Chain.num_states chain in
  let in_target =
    Array.init size (fun s -> target (Chain.config_of_index chain s))
  in
  if not (Array.exists Fun.id in_target) then
    invalid_arg "Hitting.expected_hitting_times: empty target set";
  let h = Array.make size 0. in
  let next = Array.make size 0. in
  let rec iterate k =
    let delta = ref 0. in
    for s = 0 to size - 1 do
      if in_target.(s) then next.(s) <- 0.
      else begin
        let acc = ref 1. in
        Chain.iter_transitions chain s (fun _a p ns -> acc := !acc +. (p *. h.(ns)));
        next.(s) <- !acc
      end
    done;
    for s = 0 to size - 1 do
      let d = Float.abs (next.(s) -. h.(s)) in
      if d > !delta then delta := d;
      h.(s) <- next.(s)
    done;
    if !delta < tol then ()
    else if k >= max_iters then
      failwith "Hitting.expected_hitting_times: value iteration did not converge"
    else iterate (k + 1)
  in
  iterate 0;
  h

let expected_rounds_to_max_load ?tol chain ~threshold ~from =
  let target config = Array.fold_left Stdlib.max 0 config <= threshold in
  let h = expected_hitting_times ?tol chain ~target in
  h.(Chain.state_index chain from)
