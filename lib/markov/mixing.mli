(** Mixing analysis of the exact chain.

    The paper remarks (§1.3) that its chain is non-reversible and very
    likely has no product-form stationary law, unlike the closed
    Jackson network.  For small systems we can nevertheless compute the
    stationary distribution and the exact distance-to-stationarity
    curve, which quantifies how fast "any configuration" forgets its
    start — the finite-size face of self-stabilization (experiment
    E19). *)

val tv_curve :
  Chain.t -> init:int array -> rounds:int -> pi:float array -> float array
(** [tv_curve chain ~init ~rounds ~pi] is the exact total-variation
    distance to [pi] after 0, 1, ..., [rounds] rounds starting from the
    point mass on [init] (length [rounds + 1]). *)

val mixing_time :
  ?epsilon:float -> ?max_rounds:int -> Chain.t -> init:int array -> pi:float array -> int option
(** First round at which the TV distance from [init] drops below
    [epsilon] (default 0.25, the standard mixing threshold), or [None]
    within [max_rounds] (default 10 000). *)

val worst_init_mixing_time :
  ?epsilon:float -> ?max_rounds:int -> Chain.t -> pi:float array -> int * int array
(** Mixing time maximized over all starting states (the real t_mix),
    with the maximizing configuration.
    @raise Failure if some start has not mixed within [max_rounds]. *)

val expected_max_load_curve :
  Chain.t -> init:int array -> rounds:int -> float array
(** Exact [E[M(t)]] for t = 0..rounds: the deterministic shadow of the
    simulated convergence curves. *)
