(** Exact expected hitting times on the small chains.

    First-step analysis: for a target set [A],
    [h(s) = 0] for [s ∈ A] and [h(s) = 1 + Σ_s' P(s,s') h(s')]
    otherwise.  Solved by value iteration (the chain reaches any
    reasonable target with probability 1, so iteration converges).
    Gives the exact finite-size counterpart of Theorem 1's O(n)
    convergence: [E[rounds to a legitimate configuration]] from the
    worst start, with no sampling error. *)

val expected_hitting_times :
  ?tol:float -> ?max_iters:int -> Chain.t -> target:(int array -> bool) -> float array
(** [expected_hitting_times chain ~target] returns [h] indexed by state
    ([h.(s) = 0] when [target (config s)]).  [tol] (default 1e-10) is
    the sup-norm convergence threshold of value iteration, [max_iters]
    defaults to 1 000 000.
    @raise Invalid_argument if no state satisfies [target].
    @raise Failure if value iteration has not converged (target not
    almost-surely reachable, or iteration cap hit). *)

val expected_rounds_to_max_load :
  ?tol:float -> Chain.t -> threshold:int -> from:int array -> float
(** Expected rounds until [max load <= threshold] starting from [from]:
    the exact convergence time of Theorem 1 at small n. *)
