(** Weak compositions: vectors of [parts] non-negative integers summing
    to [total].  These are exactly the load configurations of [total]
    balls in [parts] bins, and also the arrival vectors of a round — the
    two enumerations the exact chain is built from. *)

val count : total:int -> parts:int -> int
(** [C(total + parts - 1, parts - 1)], computed exactly.
    @raise Invalid_argument on negative arguments or [parts = 0], or on
    overflow. *)

val iter : total:int -> parts:int -> (int array -> unit) -> unit
(** [iter ~total ~parts f] calls [f] on every weak composition in
    lexicographic order.  The array passed to [f] is reused between
    calls — copy it if you keep it. *)

val enumerate : total:int -> parts:int -> int array array
(** All compositions, each a fresh array, lexicographic order. *)

val binomial_coefficient : int -> int -> int
(** [binomial_coefficient n k] is [C(n, k)] exactly.
    @raise Invalid_argument on overflow or bad arguments. *)
