type t = {
  n : int;
  m : int;
  states : int array array;
  index : (int array, int) Hashtbl.t;
  fact : float array;  (* factorials up to m + n *)
}

let max_states = 100_000

let create ~n ~m =
  if n <= 0 then invalid_arg "Chain.create: n <= 0";
  if m < 0 then invalid_arg "Chain.create: m < 0";
  let size = Compositions.count ~total:m ~parts:n in
  if size > max_states then
    invalid_arg
      (Printf.sprintf "Chain.create: %d states exceed the cap of %d" size max_states);
  let states = Compositions.enumerate ~total:m ~parts:n in
  let index = Hashtbl.create (2 * size) in
  Array.iteri (fun i c -> Hashtbl.replace index c i) states;
  let fact = Array.make (m + n + 1) 1. in
  for i = 1 to m + n do
    fact.(i) <- fact.(i - 1) *. float_of_int i
  done;
  { n; m; states; index; fact }

let n t = t.n
let m t = t.m
let num_states t = Array.length t.states
let config_of_index t i = Array.copy t.states.(i)

let state_index t c =
  match Hashtbl.find_opt t.index c with
  | Some i -> i
  | None -> raise Not_found

let iter_transitions t s f =
  let q = t.states.(s) in
  let h = Array.fold_left (fun acc x -> if x > 0 then acc + 1 else acc) 0 q in
  let base = Array.map (fun x -> if x > 0 then x - 1 else 0) q in
  let next = Array.make t.n 0 in
  let inv_nh = float_of_int t.n ** float_of_int h in
  Compositions.iter ~total:h ~parts:t.n (fun a ->
      (* multinomial(h; a) / n^h *)
      let denom = ref 1. in
      Array.iter (fun ai -> denom := !denom *. t.fact.(ai)) a;
      let prob = t.fact.(h) /. !denom /. inv_nh in
      for u = 0 to t.n - 1 do
        next.(u) <- base.(u) + a.(u)
      done;
      let ns = Hashtbl.find t.index next in
      f a prob ns)

let step t dist =
  let out = Array.make (num_states t) 0. in
  Array.iteri
    (fun s p ->
      if p > 0. then
        iter_transitions t s (fun _a prob ns -> out.(ns) <- out.(ns) +. (p *. prob)))
    dist;
  out

let distribution_at t ~init ~rounds =
  let dist = Array.make (num_states t) 0. in
  dist.(state_index t init) <- 1.;
  let d = ref dist in
  for _ = 1 to rounds do
    d := step t !d
  done;
  !d

let total_variation p q =
  if Array.length p <> Array.length q then
    invalid_arg "Chain.total_variation: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. Float.abs (pi -. q.(i))) p;
  !acc /. 2.

let stationary ?(tol = 1e-12) ?(max_iters = 100_000) t =
  let size = num_states t in
  let dist = Array.make size (1. /. float_of_int size) in
  let rec go d k =
    if k >= max_iters then d
    else begin
      let d' = step t d in
      if total_variation d d' < tol then d' else go d' (k + 1)
    end
  in
  go dist 0

let max_load_pmf t dist =
  let pmf = Array.make (t.m + 1) 0. in
  Array.iteri
    (fun s p ->
      let ml = Array.fold_left Stdlib.max 0 t.states.(s) in
      pmf.(ml) <- pmf.(ml) +. p)
    dist;
  pmf

let expected_max_load t dist =
  let pmf = max_load_pmf t dist in
  let acc = ref 0. in
  Array.iteri (fun k p -> acc := !acc +. (float_of_int k *. p)) pmf;
  !acc

let expectation t dist ~f =
  let acc = ref 0. in
  Array.iteri (fun s p -> if p > 0. then acc := !acc +. (p *. f t.states.(s))) dist;
  !acc
