(** Exact token-level chain: the repeated balls-into-bins process with
    {e distinguishable} balls and explicit queue order.

    {!Chain} analyzes the load vector (all the paper's theorems need);
    this module analyzes the full state — which ball sits where in which
    queue — for tiny systems, under FIFO or LIFO extraction.  It is the
    ground truth for {!Rbb_core.Token_process} (experiment E23): the
    simulator's distribution over complete queue states must match this
    chain's in total variation.

    States are placements of [m] labelled balls into [n] ordered queues;
    there are [m! · C(m+n-1, n-1)] of them (e.g. 840 for n = m = 4).
    One round: every non-empty bin extracts its head (FIFO) or tail
    (LIFO) ball; the extracted balls, taken in bin order, each draw an
    independent uniform destination and are appended in that same order
    — exactly the simulator's two-phase semantics. *)

type strategy = Fifo | Lifo

type t

val max_states : int
(** Cap on the state-space size (200 000). *)

val create : n:int -> m:int -> strategy:strategy -> t
(** @raise Invalid_argument if [n <= 0], [m < 0], or the space exceeds
    {!max_states}. *)

val n : t -> int
val m : t -> int
val num_states : t -> int
val strategy : t -> strategy

val state_of_queues : t -> int list array -> int
(** Index of the state with the given queues (front first).
    @raise Not_found if the queues are not a valid state (wrong ball
    set, wrong bin count). *)

val queues_of_state : t -> int -> int list array
(** Fresh copy of a state's queues. *)

val initial_state : t -> Rbb_core.Config.t -> int
(** The state {!Rbb_core.Token_process.create} builds from a
    configuration: consecutive ball ids fill each bin in bin order.
    @raise Invalid_argument on a size/ball-count mismatch. *)

val distribution_at : t -> init:int -> rounds:int -> float array
(** Exact distribution over full states after [rounds] rounds. *)

val step : t -> float array -> float array

val total_variation : float array -> float array -> float

val ball_position_marginal : t -> float array -> ball:int -> float array
(** [P(ball at bin u)] under a state distribution. *)

val load_vector_distribution : t -> float array -> (int array * float) list
(** Collapses a state distribution onto load vectors (the {!Chain}
    view); pairs are sorted by load vector. *)
