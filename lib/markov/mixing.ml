let tv_curve chain ~init ~rounds ~pi =
  if rounds < 0 then invalid_arg "Mixing.tv_curve: negative rounds";
  let out = Array.make (rounds + 1) 0. in
  let dist = Array.make (Chain.num_states chain) 0. in
  dist.(Chain.state_index chain init) <- 1.;
  let current = ref dist in
  out.(0) <- Chain.total_variation !current pi;
  for t = 1 to rounds do
    current := Chain.step chain !current;
    out.(t) <- Chain.total_variation !current pi
  done;
  out

let mixing_time ?(epsilon = 0.25) ?(max_rounds = 10_000) chain ~init ~pi =
  let dist = Array.make (Chain.num_states chain) 0. in
  dist.(Chain.state_index chain init) <- 1.;
  let rec go current t =
    if Chain.total_variation current pi < epsilon then Some t
    else if t >= max_rounds then None
    else go (Chain.step chain current) (t + 1)
  in
  go dist 0

let worst_init_mixing_time ?epsilon ?max_rounds chain ~pi =
  let worst = ref (-1) and arg = ref [||] in
  for s = 0 to Chain.num_states chain - 1 do
    let init = Chain.config_of_index chain s in
    match mixing_time ?epsilon ?max_rounds chain ~init ~pi with
    | None -> failwith "Mixing.worst_init_mixing_time: a start did not mix"
    | Some t ->
        if t > !worst then begin
          worst := t;
          arg := init
        end
  done;
  (!worst, !arg)

let expected_max_load_curve chain ~init ~rounds =
  if rounds < 0 then invalid_arg "Mixing.expected_max_load_curve: negative rounds";
  let out = Array.make (rounds + 1) 0. in
  let dist = Array.make (Chain.num_states chain) 0. in
  dist.(Chain.state_index chain init) <- 1.;
  let current = ref dist in
  out.(0) <- Chain.expected_max_load chain !current;
  for t = 1 to rounds do
    current := Chain.step chain !current;
    out.(t) <- Chain.expected_max_load chain !current
  done;
  out
