(** Exact computations around the Appendix B counterexample.

    The paper shows that for [n = 2] (starting from one ball per bin)
    the arrival counts [X₁, X₂] at a fixed bin in rounds 1 and 2 are not
    negatively associated, by computing
    [P(X₁=0, X₂=0) = 1/8 > 1/4 · 3/8 = P(X₁=0) P(X₂=0)].
    This module evaluates such joint zero-arrival probabilities exactly
    on the full chain, for any small [n], [m] and round set. *)

val prob_zero_arrivals :
  Chain.t -> init:int array -> bin:int -> zero_rounds:int list -> float
(** [prob_zero_arrivals chain ~init ~bin ~zero_rounds] is the exact
    probability that bin [bin] receives {e zero} balls in every round
    listed in [zero_rounds] (rounds are 1-based).  Computed by evolving
    the distribution and, in each constrained round, keeping only the
    transition branches whose arrival vector has [a_bin = 0].
    @raise Invalid_argument on an empty [zero_rounds] containing
    non-positive rounds or an out-of-range [bin]. *)

type appendix_b = {
  p_x1_zero : float;       (** exact P(X₁ = 0); paper: 1/4 *)
  p_x2_zero : float;       (** exact P(X₂ = 0); paper: 3/8 *)
  p_joint_zero : float;    (** exact P(X₁ = 0, X₂ = 0); paper: 1/8 *)
  product : float;         (** P(X₁=0)·P(X₂=0); paper: 3/32 *)
  violates_negative_association : bool;
      (** whether [p_joint_zero > product], i.e. the counterexample
          holds *)
}

val appendix_b : unit -> appendix_b
(** The paper's exact numbers, recomputed from the [n = 2] chain. *)

val covariance_of_zero_indicators :
  Chain.t -> init:int array -> bin:int -> round_a:int -> round_b:int -> float
(** Exact [Cov(1{X_a = 0}, 1{X_b = 0})]; positive covariance at
    [(1, 2)] is the counterexample restated. *)
