type strategy = Fifo | Lifo

type t = {
  n : int;
  m : int;
  strategy : strategy;
  states : int list array array;  (* state -> queues, front first *)
  index : (int list array, int) Hashtbl.t;
}

let max_states = 200_000

(* All placements of balls [0..m-1] into n ordered queues: choose a bin
   for each ball, then all interleavings per bin.  We build states by
   inserting balls one at a time at every possible queue position. *)
let enumerate_states n m =
  let empty = Array.make n [] in
  let insert_everywhere queues ball =
    let out = ref [] in
    for u = 0 to n - 1 do
      let q = queues.(u) in
      let rec positions prefix = function
        | [] ->
            let next = Array.copy queues in
            next.(u) <- List.rev (ball :: prefix);
            out := next :: !out
        | x :: rest ->
            let next = Array.copy queues in
            next.(u) <- List.rev_append prefix (ball :: x :: rest);
            out := next :: !out;
            positions (x :: prefix) rest
      in
      positions [] q
    done;
    !out
  in
  let current = ref [ empty ] in
  for ball = 0 to m - 1 do
    current := List.concat_map (fun qs -> insert_everywhere qs ball) !current
  done;
  !current

let count_states n m =
  (* m! * C(m+n-1, n-1) *)
  let fact = ref 1 in
  for i = 2 to m do
    fact := !fact * i
  done;
  !fact * Compositions.count ~total:m ~parts:n

let create ~n ~m ~strategy =
  if n <= 0 then invalid_arg "Token_chain.create: n <= 0";
  if m < 0 then invalid_arg "Token_chain.create: m < 0";
  let size = count_states n m in
  if size > max_states then
    invalid_arg
      (Printf.sprintf "Token_chain.create: %d states exceed the cap of %d" size
         max_states);
  let states = Array.of_list (enumerate_states n m) in
  assert (Array.length states = size);
  let index = Hashtbl.create (2 * size) in
  Array.iteri (fun i s -> Hashtbl.replace index s i) states;
  { n; m; strategy; states; index }

let n t = t.n
let m t = t.m
let num_states t = Array.length t.states
let strategy t = t.strategy

let state_of_queues t queues =
  match Hashtbl.find_opt t.index queues with
  | Some i -> i
  | None -> raise Not_found

let queues_of_state t i = Array.copy t.states.(i)

let initial_state t config =
  if Rbb_core.Config.n config <> t.n then
    invalid_arg "Token_chain.initial_state: bin count mismatch";
  if Rbb_core.Config.balls config <> t.m then
    invalid_arg "Token_chain.initial_state: ball count mismatch";
  let queues = Array.make t.n [] in
  let ball = ref 0 in
  for u = 0 to t.n - 1 do
    let ids = List.init (Rbb_core.Config.load config u) (fun k -> !ball + k) in
    queues.(u) <- ids;
    ball := !ball + Rbb_core.Config.load config u
  done;
  state_of_queues t queues

(* One round from state [s]: enumerate destination assignments of the
   extracted balls (n^h outcomes, uniform). *)
let iter_transitions t s f =
  let queues = t.states.(s) in
  (* Phase 1: extractions, in bin order. *)
  let movers = ref [] in
  let stripped = Array.copy queues in
  for u = 0 to t.n - 1 do
    match queues.(u) with
    | [] -> ()
    | q ->
        (match t.strategy with
        | Fifo ->
            (match q with
            | head :: rest ->
                movers := head :: !movers;
                stripped.(u) <- rest
            | [] -> assert false)
        | Lifo ->
            let rec split acc = function
              | [ last ] -> (List.rev acc, last)
              | x :: rest -> split (x :: acc) rest
              | [] -> assert false
            in
            let body, last = split [] q in
            movers := last :: !movers;
            stripped.(u) <- body)
  done;
  let movers = Array.of_list (List.rev !movers) in
  let h = Array.length movers in
  let prob = 1. /. (float_of_int t.n ** float_of_int h) in
  (* Phase 2: every destination assignment; deliveries appended in mover
     (= bin) order, matching Token_process. *)
  let dests = Array.make h 0 in
  let rec assign i =
    if i = h then begin
      let next = Array.map (fun q -> q) stripped in
      for k = 0 to h - 1 do
        next.(dests.(k)) <- next.(dests.(k)) @ [ movers.(k) ]
      done;
      f prob (Hashtbl.find t.index next)
    end
    else
      for v = 0 to t.n - 1 do
        dests.(i) <- v;
        assign (i + 1)
      done
  in
  assign 0

let step t dist =
  let out = Array.make (num_states t) 0. in
  Array.iteri
    (fun s p ->
      if p > 0. then iter_transitions t s (fun prob ns -> out.(ns) <- out.(ns) +. (p *. prob)))
    dist;
  out

let distribution_at t ~init ~rounds =
  if init < 0 || init >= num_states t then
    invalid_arg "Token_chain.distribution_at: bad initial state";
  let dist = Array.make (num_states t) 0. in
  dist.(init) <- 1.;
  let d = ref dist in
  for _ = 1 to rounds do
    d := step t !d
  done;
  !d

let total_variation p q =
  if Array.length p <> Array.length q then
    invalid_arg "Token_chain.total_variation: length mismatch";
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. Float.abs (pi -. q.(i))) p;
  !acc /. 2.

let ball_position_marginal t dist ~ball =
  if ball < 0 || ball >= t.m then
    invalid_arg "Token_chain.ball_position_marginal: ball out of range";
  let out = Array.make t.n 0. in
  Array.iteri
    (fun s p ->
      if p > 0. then begin
        let queues = t.states.(s) in
        let found = ref false in
        for u = 0 to t.n - 1 do
          if (not !found) && List.mem ball queues.(u) then begin
            out.(u) <- out.(u) +. p;
            found := true
          end
        done
      end)
    dist;
  out

let load_vector_distribution t dist =
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun s p ->
      if p > 0. then begin
        let loads = Array.map List.length t.states.(s) in
        let prev = Option.value ~default:0. (Hashtbl.find_opt tbl loads) in
        Hashtbl.replace tbl loads (prev +. p)
      end)
    dist;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
