(** The exact Markov chain of the repeated balls-into-bins process for
    small [n] and [m].

    States are load configurations (weak compositions of [m] into [n]);
    one round moves every non-empty bin's departing ball to an
    independent uniform bin, so the arrival vector [a] (summing to the
    number [h] of non-empty bins) has multinomial probability
    [h! / (∏ a_u!) · n^{-h}].  The chain is the ground truth the
    simulator is validated against (experiment E18) and the engine
    behind the Appendix B counterexample ({!Exact}).

    State counts grow as [C(m+n-1, n-1)]: n = m = 6 gives 462 states,
    comfortably exact; the constructor refuses anything above
    [max_states]. *)

type t

val max_states : int
(** Hard cap on the state-space size (100 000). *)

val create : n:int -> m:int -> t
(** @raise Invalid_argument if [n <= 0], [m < 0] or the state space
    exceeds {!max_states}. *)

val n : t -> int
val m : t -> int
val num_states : t -> int

val config_of_index : t -> int -> int array
(** Fresh copy of the state's load vector. *)

val state_index : t -> int array -> int
(** @raise Not_found for a vector that is not a state of this chain. *)

val iter_transitions : t -> int -> (int array -> float -> int -> unit) -> unit
(** [iter_transitions t s f] calls [f arrivals prob next_state] for each
    distinct arrival vector from state [s].  Probabilities sum to 1.
    The [arrivals] array is reused — copy if kept. *)

val step : t -> float array -> float array
(** One exact round applied to a distribution over states. *)

val distribution_at : t -> init:int array -> rounds:int -> float array
(** Exact distribution after [rounds] rounds started from the point mass
    on [init]. *)

val stationary : ?tol:float -> ?max_iters:int -> t -> float array
(** Power iteration until successive iterates differ by less than [tol]
    in total variation (default [1e-12], at most [max_iters] = 100 000
    iterations).  The chain is finite and aperiodic (the empty-arrival
    outcome has positive probability), so this converges. *)

val total_variation : float array -> float array -> float
(** [½ Σ |p_i - q_i|].
    @raise Invalid_argument on length mismatch. *)

val max_load_pmf : t -> float array -> float array
(** [max_load_pmf t dist] maps a distribution over states to the exact
    pmf of the max load (index k = probability the max load is k). *)

val expected_max_load : t -> float array -> float

val expectation : t -> float array -> f:(int array -> float) -> float
(** [expectation t dist ~f] is [E[f(Q)]] under a distribution over
    states: the generic functional behind exact empty-bin fractions,
    potential values, etc. *)
