(** Prometheus text exposition format (v0.0.4) for {!Registry}.

    {!render} is deterministic over a {!Registry.snapshot} — families
    sorted by name, series by canonical labels, one [# TYPE] line per
    family and a [# HELP] line when registered — so golden tests can pin
    complete bodies.  Histograms follow the convention: cumulative
    [<name>_bucket{le="..."}] lines (only populated buckets plus each
    one's predecessor bound), a [le="+Inf"] bucket equal to the total
    count, then [<name>_sum] and [<name>_count].

    Metric and label names are sanitized to [[a-zA-Z0-9_:]] (dots in raw
    instrument names become underscores); label values escape
    backslash, double-quote and newline.

    The scrape-side helpers ({!parse_histogram}, {!sample_value},
    {!scraped_quantile}) parse only what {!render} emits — enough for
    [rbb top] and [bench obs] to recover quantiles from a scraped body
    without an external Prometheus. *)

val sanitize_name : string -> string
val escape_label_value : string -> string

val render_value : float -> string
(** Sample and [le] value rendering: [+Inf] / [-Inf] / [NaN] literally,
    integral floats without an exponent, anything else as [%.9g]. *)

val render : Registry.snapshot -> string
(** The full exposition body (each sample line newline-terminated). *)

val render_registry : Registry.t -> string
(** [render (Registry.snapshot t)]. *)

val write_file : Registry.t -> path:string -> unit
(** Atomically publish the exposition to [path]
    ({!Rbb_sim.Fileio.write_atomic}), conventionally [metrics.prom]. *)

(** {2 Scrape-side readers} *)

val parse_histogram :
  ?labels:(string * string) list -> string -> string -> (float * int) list
(** [parse_histogram ?labels body name]: the cumulative
    [(le, count)] buckets of [name]'s histogram whose labels include
    [labels], sorted by [le] (the [+Inf] bucket last).  [[]] when
    absent. *)

val sample_value :
  ?labels:(string * string) list -> string -> string -> float option
(** First sample of metric [name] whose labels include [labels]. *)

val scraped_quantile :
  ?labels:(string * string) list -> string -> string -> float -> float option
(** [scraped_quantile ?labels body name q]: quantile [q] recovered from
    the scraped bucket lines via {!Registry.quantile_of_buckets}. *)
