(* Prometheus text exposition format v0.0.4 over Registry snapshots,
   plus a minimal parser for the histogram lines — enough for `rbb top`
   and `bench obs` to read quantiles back out of a scraped body without
   a real Prometheus server in the loop. *)

(* Metric names may only contain [a-zA-Z0-9_:] and must not start with
   a digit; raw instrument names like "process.rounds" arrive with dots
   and are mapped onto '_'. *)
let sanitize_name name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
    | _ -> Bytes.set b i '_'
  done;
  let s = Bytes.to_string b in
  if s = "" then "_"
  else
    match s.[0] with
    | '0' .. '9' -> "_" ^ s
    | _ -> s

(* Label values escape backslash, double quote and newline. *)
let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* HELP text escapes backslash and newline (quotes are fine there). *)
let escape_help v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Sample values: integral floats render without an exponent so counter
   lines read naturally; +Inf per the exposition grammar. *)
let render_value v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_labels = function
  | [] -> ""
  | labels ->
      let parts =
        List.map
          (fun (k, v) ->
            Printf.sprintf "%s=\"%s\"" (sanitize_name k)
              (escape_label_value v))
          labels
      in
      "{" ^ String.concat "," parts ^ "}"

(* le/quantile label values use the same rendering as sample values so
   "0.001" round-trips; +Inf is literal. *)
let render_le = render_value

let render_labels_with_le labels le =
  let parts =
    List.map
      (fun (k, v) ->
        Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
      labels
    @ [ Printf.sprintf "le=\"%s\"" (render_le le) ]
  in
  "{" ^ String.concat "," parts ^ "}"

let type_of_value = function
  | Registry.Vcounter _ -> "counter"
  | Registry.Vgauge _ -> "gauge"
  | Registry.Vhistogram _ -> "histogram"

let render snap =
  let b = Buffer.create 4096 in
  List.iter
    (fun (raw_name, series) ->
      let name = sanitize_name raw_name in
      (match List.assoc_opt raw_name snap.Registry.helps with
      | Some help ->
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" name (escape_help help))
      | None -> ());
      (match series with
      | (_, v) :: _ ->
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s %s\n" name (type_of_value v))
      | [] -> ());
      List.iter
        (fun (labels, v) ->
          match v with
          | Registry.Vcounter x | Registry.Vgauge x ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" name (render_labels labels)
                   (render_value x))
          | Registry.Vhistogram h ->
              List.iter
                (fun (le, cum) ->
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" name
                       (render_labels_with_le labels le)
                       cum))
                h.Registry.buckets;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (render_labels_with_le labels Float.infinity)
                   h.Registry.count);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
                   (render_value h.Registry.sum));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" name
                   (render_labels labels) h.Registry.count))
        series)
    snap.Registry.families;
  Buffer.contents b

let render_registry t = render (Registry.snapshot t)

let write_file t ~path =
  Rbb_sim.Fileio.write_atomic ~path (fun oc ->
      output_string oc (render_registry t))

(* Scrape-side parsing ------------------------------------------------ *)

(* Split "name{l1=\"v1\",...} value" into (name, labels, value).  Only
   what the renderer above emits — no full grammar, no escapes beyond
   the three the renderer writes. *)
let parse_sample line =
  if line = "" || line.[0] = '#' then None
  else
    let name_end =
      match (String.index_opt line '{', String.index_opt line ' ') with
      | Some i, Some j -> Stdlib.min i j
      | Some i, None -> i
      | None, Some j -> j
      | None, None -> String.length line
    in
    let name = String.sub line 0 name_end in
    let labels, rest_start =
      if name_end < String.length line && line.[name_end] = '{' then
        match String.index_from_opt line name_end '}' with
        | None -> ([], name_end)
        | Some close ->
            let body = String.sub line (name_end + 1) (close - name_end - 1) in
            let parts =
              if body = "" then [] else String.split_on_char ',' body
            in
            let labels =
              List.filter_map
                (fun part ->
                  match String.index_opt part '=' with
                  | None -> None
                  | Some eq ->
                      let k = String.sub part 0 eq in
                      let v =
                        String.sub part (eq + 1) (String.length part - eq - 1)
                      in
                      let v =
                        if
                          String.length v >= 2
                          && v.[0] = '"'
                          && v.[String.length v - 1] = '"'
                        then String.sub v 1 (String.length v - 2)
                        else v
                      in
                      Some (k, v))
                parts
            in
            (labels, close + 1)
      else ([], name_end)
    in
    let value_str =
      String.trim
        (String.sub line rest_start (String.length line - rest_start))
    in
    let value =
      match value_str with
      | "+Inf" -> Some Float.infinity
      | "-Inf" -> Some Float.neg_infinity
      | s -> float_of_string_opt s
    in
    Option.map (fun v -> (name, labels, v)) value

let labels_match ~want have =
  List.for_all
    (fun (k, v) -> List.assoc_opt k have = Some v)
    want

(* Reassemble one histogram's cumulative buckets from a scraped body:
   every `<name>_bucket{...,le="..."}` line whose other labels match. *)
let parse_histogram ?(labels = []) body name =
  let bucket_metric = sanitize_name name ^ "_bucket" in
  let buckets = ref [] in
  List.iter
    (fun line ->
      match parse_sample line with
      | Some (m, ls, v) when m = bucket_metric -> (
          match List.assoc_opt "le" ls with
          | Some le_str
            when labels_match ~want:labels
                   (List.remove_assoc "le" ls) -> (
              let le =
                if le_str = "+Inf" then Some Float.infinity
                else float_of_string_opt le_str
              in
              match le with
              | Some le -> buckets := (le, int_of_float v) :: !buckets
              | None -> ())
          | _ -> ())
      | _ -> ())
    (String.split_on_char '\n' body);
  List.sort (fun (a, _) (b, _) -> Float.compare a b) !buckets

let sample_value ?(labels = []) body name =
  let metric = sanitize_name name in
  List.find_map
    (fun line ->
      match parse_sample line with
      | Some (m, ls, v) when m = metric && labels_match ~want:labels ls ->
          Some v
      | _ -> None)
    (String.split_on_char '\n' body)

let scraped_quantile ?labels body name q =
  match parse_histogram ?labels body name with
  | [] -> None
  | buckets ->
      (* Drop the +Inf bucket: quantile_of_buckets treats the last
         finite bound as the ceiling, matching the renderer's pairing
         of each populated bucket with its predecessor. *)
      let finite = List.filter (fun (le, _) -> Float.is_finite le) buckets in
      let total =
        match List.rev buckets with (_, c) :: _ -> c | [] -> 0
      in
      if total = 0 then None
      else
        Registry.quantile_of_buckets
          (finite @ [ (Float.infinity, total) ])
          q
