(** Process-wide labeled metrics registry.

    Counters, gauges and log-bucketed (HDR-style) histograms keyed by
    [(name, label set)], with rolling-time-window quantiles over an
    injectable clock and deterministic snapshots for the Prometheus
    exporter ({!Rbb_obs.Prometheus}).  The daemon keeps one registry per
    process (per-job wait/service/sojourn histograms, queue gauges), and
    engines feed one through {!probe} — the same pay-for-what-you-use
    discipline as {!Rbb_sim.Telemetry}: {!noop} reduces every operation
    to a single pattern match, guarded < 1.5x in [bench micro].

    {2 Labels}

    Label sets are canonicalized (sorted by key) on every call, so
    [\["a","1"; "b","2"\]] and [\["b","2"; "a","1"\]] address the same
    series; duplicate keys raise [Invalid_argument].  A metric name has
    one kind for the whole process — using an existing counter name as a
    gauge or histogram raises.

    {2 Histogram geometry}

    All histograms share one log-bucket layout: 16 sub-buckets per
    octave from 2^-30 s (~1 ns) to 2^20 s, so adjacent bucket bounds are
    2^(1/16) ~ 4.4% apart and interpolated quantiles carry < 5% relative
    error.  The shared geometry is what makes scraped histograms
    mergeable bucket-wise ({!merge_histogram}).

    {2 Window quantiles}

    Each histogram additionally maintains [slices] rotating
    sub-histograms of [window_s / slices] seconds each, driven by the
    registry clock; {!window_quantile} merges the live slices, so it
    spans between [window_s] and [window_s + window_s/slices] seconds of
    trailing observations.  Tests inject a fake clock to pin rotation
    exactly. *)

type t

type labels = (string * string) list
(** Label pairs; order-insensitive, duplicate keys rejected. *)

val noop : t
(** Inert registry: all operations are no-ops, all readers return their
    defaults, [enabled] is false. *)

val create : ?clock:(unit -> int64) -> ?window_s:float -> ?slices:int -> unit -> t
(** A fresh active registry.  [clock] returns monotonic nanoseconds
    (default: the process-wide monotonic clock); [window_s] (default 60)
    and [slices] (default 6) size the rolling quantile window. *)

val enabled : t -> bool

val now_ns : t -> int64
(** Current clock reading in nanoseconds (0 on {!noop}). *)

val help : t -> name:string -> string -> unit
(** Register a [# HELP] line for [name] in the exposition. *)

(** {2 Instruments} *)

val incr : t -> ?labels:labels -> string -> unit
val add : t -> ?labels:labels -> string -> float -> unit
(** Counter increment; negative increments raise [Invalid_argument]. *)

val set_counter : t -> ?labels:labels -> string -> float -> unit
(** Set a counter to an absolute value (for re-exporting totals that
    another registry already accumulated, e.g. {!import_telemetry});
    idempotent, unlike {!add}. *)

val set_gauge : t -> ?labels:labels -> string -> float -> unit

val observe : t -> ?labels:labels -> string -> float -> unit
(** Record one histogram observation (seconds, by convention). *)

(** {2 Readers} *)

val counter_value : t -> ?labels:labels -> string -> float
(** Current counter value (0 when absent or on {!noop}). *)

val gauge_value : t -> ?labels:labels -> string -> float option
val hist_count : t -> ?labels:labels -> string -> int
val hist_sum : t -> ?labels:labels -> string -> float

val quantile : t -> ?labels:labels -> string -> float -> float option
(** All-time quantile [q] in [0,1], interpolated within the winning
    bucket; [None] when the histogram is absent or empty. *)

val window_quantile : t -> ?labels:labels -> string -> float -> float option
(** Like {!quantile} over the trailing time window only. *)

val reset_histograms : t -> unit
(** Zero every histogram (all-time and window state), leaving counters
    and gauges untouched.  The daemon calls this on [reset_stats] so a
    scrape after an [rbb slam] measurement window reflects only that
    window's jobs. *)

(** {2 Snapshots} *)

type histogram = {
  buckets : (float * int) list;
      (** [(le, cumulative count)] with [le] ascending; only buckets
          with observations plus each one's immediate predecessor bound
          are listed (the predecessor pins the lower edge, bounding
          interpolation error for readers of the exposition). *)
  sum : float;
  count : int;
}

type value = Vcounter of float | Vgauge of float | Vhistogram of histogram

type snapshot = {
  families : (string * (labels * value) list) list;
      (** Sorted by metric name; series within a family sorted by
          canonical labels.  Deterministic for a fixed sequence of
          updates, so renderings can be pinned by golden tests. *)
  helps : (string * string) list;
}

val snapshot : t -> snapshot

val merge_histogram : histogram -> histogram -> histogram
(** Bucket-wise sum of two snapshots sharing the registry geometry:
    [count]s and [sum]s add, quantiles of the merge equal quantiles of
    the concatenated observations within bucket resolution. *)

val quantile_of_buckets : (float * int) list -> float -> float option
(** Quantile from a published cumulative bucket list (what a scraper
    has), interpolating between consecutive published bounds — the
    client-side [histogram_quantile].  [None] on an empty histogram. *)

(** {2 Bridges} *)

val probe : ?labels:labels -> ?threshold:int -> t -> Rbb_core.Probe.t
(** A probe feeding this registry, for instrumenting core engines.
    Maintains [rbb_rounds_total], [rbb_round] / [rbb_max_load] /
    [rbb_empty_bins] / [rbb_balls] gauges and an [rbb_round_seconds]
    latency histogram, re-exports engine counters as [<name>_total] and
    timers as [<name>_seconds_total] / [<name>_calls_total].  With
    [?threshold] (the m-aware legitimacy bound) it also tracks
    legitimacy: an [rbb_legitimate] gauge, dwell/excursion round
    counters and enter/exit transition counters (first observation sets
    the baseline; no transition is counted for it, matching
    {!Rbb_sim.Tracer}).  [probe noop] is [Rbb_core.Probe.noop]. *)

val import_telemetry : ?labels:labels -> t -> Rbb_sim.Telemetry.t -> unit
(** Re-export a {!Rbb_sim.Telemetry} sink's counters, gauges and timers
    into this registry with set-semantics ([<name>_total],
    [<name>_seconds_total], [<name>_calls_total]) — idempotent, so a
    daemon can re-import at every scrape without double counting, and a
    live {!probe} that already accumulated the same instruments lands on
    identical totals. *)
