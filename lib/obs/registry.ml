(* Process-wide labeled metrics registry: counters, gauges and
   log-bucketed histograms keyed by (name, sorted label set), with a
   rolling time window for live quantiles.  Same discipline as
   Telemetry: one mutex serialises all mutation, the noop registry
   short-circuits every operation to a single pattern match, and
   snapshots are deterministically ordered so renderings can be pinned
   by golden tests. *)

type labels = (string * string) list

let canonical labels =
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "Registry: duplicate label %S" a)
        else check rest
    | _ -> ()
  in
  check sorted;
  sorted

(* Histogram geometry: HDR-style log buckets, [sub] sub-buckets per
   octave over [2^e_min, 2^e_max).  Bucket 0 holds v <= 2^e_min (and
   every nonpositive value); the last bucket is the overflow.  With 16
   sub-buckets an octave, adjacent bounds are 2^(1/16) ~ 4.4% apart, so
   an interpolated quantile is within ~5% of the exact sample quantile
   — comfortably inside the rel-err <= 0.1 gate the slam comparison
   runs under.  All histograms share the geometry, which is what makes
   them mergeable by plain bucket-wise addition. *)

let sub = 16
let e_min = -30. (* 2^-30 s ~ 0.93 ns: below clock resolution *)
let e_max = 20. (* 2^20 s ~ 12 days *)
let nbuckets = 2 + (sub * int_of_float (e_max -. e_min))

let bound_of_bucket i =
  (* Upper bound of bucket [i]; the overflow bucket's is +inf. *)
  if i >= nbuckets - 1 then infinity
  else Float.pow 2. (e_min +. (float_of_int i /. float_of_int sub))

let bucket_of_value v =
  if not (v > bound_of_bucket 0) then 0
  else if Float.is_nan v then 0
  else
    let idx =
      1 + int_of_float (Float.floor (float_of_int sub *. (Float.log2 v -. e_min)))
    in
    let idx = if v <= bound_of_bucket (idx - 1) then idx - 1 else idx in
    Stdlib.max 1 (Stdlib.min (nbuckets - 1) idx)

type hist = {
  counts : int array;  (* all-time, per bucket *)
  mutable total : int;
  mutable sum : float;
  (* Rolling window: [slices] sub-histograms covering [slice_s] seconds
     each; the head slice is the one currently being written.  A
     window quantile merges every slice, so it spans the last
     window_s .. window_s + slice_s seconds of observations. *)
  slices : int array array;
  slice_totals : int array;
  mutable head : int;
  mutable head_start_s : float;
}

type kind = Kcounter | Kgauge | Khist

type series =
  | Counter of float ref
  | Gauge of float ref
  | Hist of hist

type sink = {
  clock : unit -> int64;
  window_s : float;
  slice_s : float;
  lock : Mutex.t;
  series : (string * labels, series) Hashtbl.t;
  kinds : (string, kind) Hashtbl.t;
  help_texts : (string, string) Hashtbl.t;
}

type t = Noop | Active of sink

let noop = Noop

let create ?(clock = Monotonic_clock.now) ?(window_s = 60.) ?(slices = 6) () =
  if not (window_s > 0.) then
    invalid_arg "Registry.create: window_s must be positive";
  if slices < 1 then invalid_arg "Registry.create: slices must be at least 1";
  Active
    {
      clock;
      window_s;
      slice_s = window_s /. float_of_int slices;
      lock = Mutex.create ();
      series = Hashtbl.create 32;
      kinds = Hashtbl.create 32;
      help_texts = Hashtbl.create 32;
    }

let enabled = function Noop -> false | Active _ -> true
let now_ns = function Noop -> 0L | Active s -> s.clock ()

let kind_name = function
  | Kcounter -> "counter"
  | Kgauge -> "gauge"
  | Khist -> "histogram"

(* Callers hold the lock. *)
let find_series s ~name ~labels ~kind ~make =
  (match Hashtbl.find_opt s.kinds name with
  | None -> Hashtbl.add s.kinds name kind
  | Some k when k = kind -> ()
  | Some k ->
      Mutex.unlock s.lock;
      invalid_arg
        (Printf.sprintf "Registry: metric %S is a %s, not a %s" name
           (kind_name k) (kind_name kind)));
  match Hashtbl.find_opt s.series (name, labels) with
  | Some v -> v
  | None ->
      let v = make () in
      Hashtbl.add s.series (name, labels) v;
      v

let fresh_hist s =
  let slices = Stdlib.max 1 (int_of_float (s.window_s /. s.slice_s)) in
  {
    counts = Array.make nbuckets 0;
    total = 0;
    sum = 0.;
    slices = Array.init slices (fun _ -> Array.make nbuckets 0);
    slice_totals = Array.make slices 0;
    head = 0;
    head_start_s = Int64.to_float (s.clock ()) /. 1e9;
  }

let help t ~name text =
  match t with
  | Noop -> ()
  | Active s ->
      Mutex.lock s.lock;
      Hashtbl.replace s.help_texts name text;
      Mutex.unlock s.lock

let add t ?(labels = []) name v =
  match t with
  | Noop -> ()
  | Active s ->
      if not (v >= 0.) then
        invalid_arg
          (Printf.sprintf "Registry.add: counter %S increment must be >= 0"
             name);
      let labels = canonical labels in
      Mutex.lock s.lock;
      (match
         find_series s ~name ~labels ~kind:Kcounter ~make:(fun () ->
             Counter (ref 0.))
       with
      | Counter r -> r := !r +. v
      | Gauge _ | Hist _ -> assert false);
      Mutex.unlock s.lock

let incr t ?labels name = add t ?labels name 1.

let set_counter t ?(labels = []) name v =
  match t with
  | Noop -> ()
  | Active s ->
      let labels = canonical labels in
      Mutex.lock s.lock;
      (match
         find_series s ~name ~labels ~kind:Kcounter ~make:(fun () ->
             Counter (ref 0.))
       with
      | Counter r -> r := v
      | Gauge _ | Hist _ -> assert false);
      Mutex.unlock s.lock

let set_gauge t ?(labels = []) name v =
  match t with
  | Noop -> ()
  | Active s ->
      let labels = canonical labels in
      Mutex.lock s.lock;
      (match
         find_series s ~name ~labels ~kind:Kgauge ~make:(fun () ->
             Gauge (ref 0.))
       with
      | Gauge r -> r := v
      | Counter _ | Hist _ -> assert false);
      Mutex.unlock s.lock

(* Advance the window ring so the head slice covers [now_s].  A gap
   longer than the whole window simply clears every slice. *)
let rotate s h ~now_s =
  if now_s -. h.head_start_s >= s.window_s +. s.slice_s then begin
    Array.iter (fun sl -> Array.fill sl 0 nbuckets 0) h.slices;
    Array.fill h.slice_totals 0 (Array.length h.slice_totals) 0;
    h.head_start_s <- now_s
  end
  else
    while now_s -. h.head_start_s >= s.slice_s do
      h.head <- (h.head + 1) mod Array.length h.slices;
      Array.fill h.slices.(h.head) 0 nbuckets 0;
      h.slice_totals.(h.head) <- 0;
      h.head_start_s <- h.head_start_s +. s.slice_s
    done

let observe t ?(labels = []) name v =
  match t with
  | Noop -> ()
  | Active s ->
      let labels = canonical labels in
      Mutex.lock s.lock;
      (match
         find_series s ~name ~labels ~kind:Khist ~make:(fun () ->
             Hist (fresh_hist s))
       with
      | Hist h ->
          let b = bucket_of_value v in
          h.counts.(b) <- h.counts.(b) + 1;
          h.total <- h.total + 1;
          h.sum <- h.sum +. v;
          rotate s h ~now_s:(Int64.to_float (s.clock ()) /. 1e9);
          h.slices.(h.head).(b) <- h.slices.(h.head).(b) + 1;
          h.slice_totals.(h.head) <- h.slice_totals.(h.head) + 1
      | Counter _ | Gauge _ -> assert false);
      Mutex.unlock s.lock

(* Readers ------------------------------------------------------------ *)

let with_series t ?(labels = []) name ~default f =
  match t with
  | Noop -> default
  | Active s ->
      let labels = canonical labels in
      Mutex.lock s.lock;
      let v =
        match Hashtbl.find_opt s.series (name, labels) with
        | None -> default
        | Some sr -> f sr
      in
      Mutex.unlock s.lock;
      v

let counter_value t ?labels name =
  with_series t ?labels name ~default:0. (function
    | Counter r -> !r
    | Gauge _ | Hist _ -> 0.)

let gauge_value t ?labels name =
  with_series t ?labels name ~default:None (function
    | Gauge r -> Some !r
    | Counter _ | Hist _ -> None)

let hist_count t ?labels name =
  with_series t ?labels name ~default:0 (function
    | Hist h -> h.total
    | Counter _ | Gauge _ -> 0)

let hist_sum t ?labels name =
  with_series t ?labels name ~default:0. (function
    | Hist h -> h.sum
    | Counter _ | Gauge _ -> 0.)

(* Quantile over raw per-bucket counts, interpolating linearly inside
   the winning bucket (bucket 0 and the overflow bucket report their
   finite edge).  Mirrors Rbb_stats.Float_hist.quantile. *)
let quantile_of_counts counts total q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Registry.quantile: q not in [0,1]";
  if total = 0 then None
  else begin
    let target = q *. float_of_int total in
    let rec scan i acc =
      if i >= nbuckets then Some (bound_of_bucket (nbuckets - 2))
      else
        let acc' = acc + counts.(i) in
        if float_of_int acc' >= target && counts.(i) > 0 then
          if i = 0 then Some (bound_of_bucket 0)
          else if i = nbuckets - 1 then Some (bound_of_bucket (nbuckets - 2))
          else
            let lo = bound_of_bucket (i - 1) and hi = bound_of_bucket i in
            let within =
              (target -. float_of_int acc) /. float_of_int counts.(i)
            in
            Some (lo +. (within *. (hi -. lo)))
        else scan (i + 1) acc'
    in
    scan 0 0
  end

let quantile t ?labels name q =
  with_series t ?labels name ~default:None (function
    | Hist h -> quantile_of_counts h.counts h.total q
    | Counter _ | Gauge _ -> None)

let window_quantile t ?labels name q =
  match t with
  | Noop -> None
  | Active s ->
      with_series t ?labels name ~default:None (function
        | Hist h ->
            rotate s h ~now_s:(Int64.to_float (s.clock ()) /. 1e9);
            let merged = Array.make nbuckets 0 in
            let total = ref 0 in
            Array.iter
              (fun sl ->
                Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) sl)
              h.slices;
            Array.iter (fun c -> total := !total + c) h.slice_totals;
            quantile_of_counts merged !total q
        | Counter _ | Gauge _ -> None)

let reset_histograms t =
  match t with
  | Noop -> ()
  | Active s ->
      Mutex.lock s.lock;
      Hashtbl.iter
        (fun _ sr ->
          match sr with
          | Hist h ->
              Array.fill h.counts 0 nbuckets 0;
              h.total <- 0;
              h.sum <- 0.;
              Array.iter (fun sl -> Array.fill sl 0 nbuckets 0) h.slices;
              Array.fill h.slice_totals 0 (Array.length h.slice_totals) 0
          | Counter _ | Gauge _ -> ())
        s.series;
      Mutex.unlock s.lock

(* Snapshots ---------------------------------------------------------- *)

type histogram = {
  buckets : (float * int) list;  (* (le, cumulative count), le ascending *)
  sum : float;
  count : int;
}

type value = Vcounter of float | Vgauge of float | Vhistogram of histogram

type snapshot = {
  families : (string * (labels * value) list) list;
  helps : (string * string) list;
}

(* Emit a bucket when its own count is nonzero, plus its immediate
   predecessor bound: the predecessor pins the bucket's lower edge in
   the exposition, so a reader interpolating between published bounds
   never spans more than one true bucket width. *)
let hist_snapshot h =
  let keep = Array.make nbuckets false in
  for i = 0 to nbuckets - 1 do
    if h.counts.(i) > 0 then begin
      keep.(i) <- true;
      if i > 0 then keep.(i - 1) <- true
    end
  done;
  let buckets = ref [] in
  let cum = ref 0 in
  for i = 0 to nbuckets - 2 do
    cum := !cum + h.counts.(i);
    if keep.(i) then buckets := (bound_of_bucket i, !cum) :: !buckets
  done;
  { buckets = List.rev !buckets; sum = h.sum; count = h.total }

let compare_labels a b =
  compare (List.map (fun (k, v) -> (k, v)) a) (List.map (fun (k, v) -> (k, v)) b)

let snapshot t =
  match t with
  | Noop -> { families = []; helps = [] }
  | Active s ->
      Mutex.lock s.lock;
      let by_name = Hashtbl.create 32 in
      Hashtbl.iter
        (fun (name, labels) sr ->
          let v =
            match sr with
            | Counter r -> Vcounter !r
            | Gauge r -> Vgauge !r
            | Hist h -> Vhistogram (hist_snapshot h)
          in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt by_name name)
          in
          Hashtbl.replace by_name name ((labels, v) :: prev))
        s.series;
      let families =
        Hashtbl.fold
          (fun name series acc ->
            (name, List.sort (fun (a, _) (b, _) -> compare_labels a b) series)
            :: acc)
          by_name []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let helps =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.help_texts []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Mutex.unlock s.lock;
      { families; helps }

(* Merging: the shared geometry makes this bucket-wise addition over
   the published cumulative lists.  Used by tests and by readers that
   aggregate scraped histograms from several processes. *)
let merge_histogram a b =
  let deltas buckets =
    let rec go prev = function
      | [] -> []
      | (le, cum) :: rest -> (le, cum - prev) :: go cum rest
    in
    go 0 buckets
  in
  let rec merge xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | (lx, cx) :: tx, (ly, cy) :: ty ->
        if lx < ly then (lx, cx) :: merge tx ys
        else if ly < lx then (ly, cy) :: merge xs ty
        else (lx, cx + cy) :: merge tx ty
  in
  let merged = merge (deltas a.buckets) (deltas b.buckets) in
  let _, buckets =
    List.fold_left
      (fun (cum, acc) (le, d) -> (cum + d, (le, cum + d) :: acc))
      (0, []) merged
  in
  {
    buckets = List.rev buckets;
    sum = a.sum +. b.sum;
    count = a.count + b.count;
  }

(* Quantile over a published cumulative bucket list (what a scraper
   has): Prometheus's histogram_quantile, linear within the span
   between consecutive published bounds. *)
let quantile_of_buckets buckets q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Registry.quantile_of_buckets: q not in [0,1]";
  match List.rev buckets with
  | [] -> None
  | (_, count) :: _ when count = 0 -> None
  | (last_le, count) :: _ ->
      let target = q *. float_of_int count in
      let rec scan prev_le prev_cum = function
        | [] -> Some last_le
        | (le, cum) :: rest ->
            if float_of_int cum >= target && cum > prev_cum then
              let within =
                (target -. float_of_int prev_cum)
                /. float_of_int (cum - prev_cum)
              in
              if Float.is_finite le then
                Some (prev_le +. (within *. (le -. prev_le)))
              else Some prev_le
            else scan le cum rest
      in
      scan 0. 0 buckets

(* Bridge to the engines --------------------------------------------- *)

(* Raw instrument names ("process.rounds") keep their dots inside the
   registry; the Prometheus renderer sanitises on the way out. *)

let probe ?(labels = []) ?threshold t =
  match t with
  | Noop -> Rbb_core.Probe.noop
  | Active s ->
      let labels = canonical labels in
      (* Legitimacy tracking state: transitions are detected against
         the previous observed round, first observation sets the
         baseline — the same convention as Tracer. *)
      let prev_legit = ref None in
      let on_round ~round ~max_load ~empty_bins ~balls =
        incr t ~labels "rbb_rounds_total";
        set_gauge t ~labels "rbb_round" (float_of_int round);
        set_gauge t ~labels "rbb_max_load" (float_of_int max_load);
        set_gauge t ~labels "rbb_empty_bins" (float_of_int empty_bins);
        set_gauge t ~labels "rbb_balls" (float_of_int balls);
        match threshold with
        | None -> ()
        | Some thr ->
            let legit = max_load <= thr in
            set_gauge t ~labels "rbb_legitimacy_threshold" (float_of_int thr);
            set_gauge t ~labels "rbb_legitimate" (if legit then 1. else 0.);
            incr t ~labels
              (if legit then "rbb_legitimacy_dwell_rounds_total"
               else "rbb_legitimacy_excursion_rounds_total");
            (match (!prev_legit, legit) with
            | Some false, true -> incr t ~labels "rbb_legitimacy_enters_total"
            | Some true, false -> incr t ~labels "rbb_legitimacy_exits_total"
            | _ -> ());
            prev_legit := Some legit
      in
      {
        Rbb_core.Probe.noop with
        enabled = true;
        tracing = true;
        now = s.clock;
        add =
          (fun name k -> add t ~labels (name ^ "_total") (float_of_int k));
        timer_add =
          (fun name ns ->
            add t ~labels (name ^ "_seconds_total")
              (Int64.to_float ns /. 1e9);
            incr t ~labels (name ^ "_calls_total"));
        latency =
          (fun ns ->
            observe t ~labels "rbb_round_seconds" (Int64.to_float ns /. 1e9));
        on_round;
      }

(* Re-export a Telemetry sink's registers.  Set-semantics (absolute
   values) so the import is idempotent: a daemon can re-import at every
   scrape without double counting, and an engine whose probe already
   accumulated the same instruments lands on identical totals. *)
let import_telemetry ?labels t tel =
  if enabled t && Rbb_sim.Telemetry.enabled tel then begin
    List.iter
      (fun (name, v) ->
        set_counter t ?labels (name ^ "_total") (float_of_int v))
      (Rbb_sim.Telemetry.counters tel);
    List.iter
      (fun (name, v) -> set_gauge t ?labels name v)
      (Rbb_sim.Telemetry.gauges tel);
    List.iter
      (fun (name, (calls, total_ns)) ->
        set_counter t ?labels (name ^ "_seconds_total")
          (Int64.to_float total_ns /. 1e9);
        set_counter t ?labels (name ^ "_calls_total") (float_of_int calls))
      (Rbb_sim.Telemetry.timers tel)
  end
