type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed = { state = seed }
let copy g = { state = g.state }
let state g = [| g.state |]

let of_state s =
  if Array.length s <> 1 then
    invalid_arg "Splitmix64.of_state: expected 1 state word";
  { state = s.(0) }

let next_u64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let fill_int62 g a ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Splitmix64.fill_int62: range out of bounds";
  (* Single-function batch so the state word stays unboxed. *)
  let s = ref g.state in
  for i = pos to pos + len - 1 do
    s := Int64.add !s golden_gamma;
    Array.unsafe_set a i (Int64.to_int (mix !s) land max_int)
  done;
  g.state <- !s
