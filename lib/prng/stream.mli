(** Keyed substreams: named, order-independent derivation of independent
    generators from one master seed.

    [Rng.split] is positional — the k-th split depends on how many
    splits happened before it.  Keyed derivation makes a component's
    randomness depend only on [(master seed, key)], so adding a new
    component to an experiment never perturbs the streams of existing
    ones (the "random number creep" problem in simulation codebases). *)

val derive : master:int64 -> key:string -> Rng.t
(** [derive ~master ~key] builds a generator whose seed is a 64-bit hash
    (FNV-1a folded through SplitMix64) of [key] mixed with [master].
    Same pair, same stream; distinct keys give statistically independent
    streams. *)

val derive_indexed : master:int64 -> key:string -> index:int -> Rng.t
(** [derive ~key:(key ^ "/" ^ index)], for families of streams. *)

val seed_of_key : master:int64 -> key:string -> int64
(** The derived seed itself (for logging / reproduction). *)
