(** Keyed substreams: named, order-independent derivation of independent
    generators from one master seed.

    [Rng.split] is positional — the k-th split depends on how many
    splits happened before it.  Keyed derivation makes a component's
    randomness depend only on [(master seed, key)], so adding a new
    component to an experiment never perturbs the streams of existing
    ones (the "random number creep" problem in simulation codebases). *)

val derive : master:int64 -> key:string -> Rng.t
(** [derive ~master ~key] builds a generator whose seed is a 64-bit hash
    (FNV-1a folded through SplitMix64) of [key] mixed with [master].
    Same pair, same stream; distinct keys give statistically independent
    streams. *)

val derive_indexed : master:int64 -> key:string -> index:int -> Rng.t
(** [derive ~key:(key ^ "/" ^ index)], for families of streams. *)

val seed_of_key : master:int64 -> key:string -> int64
(** The derived seed itself (for logging / reproduction). *)

val for_shard :
  ?engine:Rng.engine -> master:int64 -> round:int -> shard:int -> unit -> Rng.t
(** [for_shard ~master ~round ~shard ()] is the generator for one
    randomness shard of one round of a sharded simulation.  The stream
    depends only on the triple [(master, round, shard)] — never on how
    shards are scheduled onto domains — which is what makes a
    domain-parallel engine bit-reproducible at every domain count.
    Derivation is purely arithmetic (two SplitMix64 finalizations), so
    it is cheap enough to call once per shard per round in a hot loop.
    @raise Invalid_argument if [round] or [shard] is negative. *)

val seed_for_shard : master:int64 -> round:int -> shard:int -> int64
(** The seed behind {!for_shard} (for logging / reproduction). *)
