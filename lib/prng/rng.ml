type engine = Xoshiro | Pcg | Splitmix

type state =
  | Sx of Xoshiro256.t
  | Sp of Pcg32.t
  | Ss of Splitmix64.t

type t = { state : state; engine : engine; seed : int64 }

let create ?(engine = Xoshiro) ~seed () =
  let state =
    match engine with
    | Xoshiro -> Sx (Xoshiro256.create ~seed)
    | Pcg -> Sp (Pcg32.create ~seed)
    | Splitmix -> Ss (Splitmix64.create ~seed)
  in
  { state; engine; seed }

let engine t = t.engine
let seed t = t.seed

let copy t =
  let state =
    match t.state with
    | Sx g -> Sx (Xoshiro256.copy g)
    | Sp g -> Sp (Pcg32.copy g)
    | Ss g -> Ss (Splitmix64.copy g)
  in
  { t with state }

type snapshot = { snap_engine : engine; snap_seed : int64; words : int64 array }

let snapshot t =
  let words =
    match t.state with
    | Sx g -> Xoshiro256.state g
    | Sp g -> Pcg32.state g
    | Ss g -> Splitmix64.state g
  in
  { snap_engine = t.engine; snap_seed = t.seed; words }

let of_snapshot s =
  let state =
    match s.snap_engine with
    | Xoshiro -> Sx (Xoshiro256.of_state s.words)
    | Pcg -> Sp (Pcg32.of_state s.words)
    | Splitmix -> Ss (Splitmix64.of_state s.words)
  in
  { state; engine = s.snap_engine; seed = s.snap_seed }

let next_u64 t =
  match t.state with
  | Sx g -> Xoshiro256.next_u64 g
  | Sp g -> Pcg32.next_u64 g
  | Ss g -> Splitmix64.next_u64 g

let fill_int62 t a ~pos ~len =
  match t.state with
  | Sx g -> Xoshiro256.fill_int62 g a ~pos ~len
  | Sp g -> Pcg32.fill_int62 g a ~pos ~len
  | Ss g -> Splitmix64.fill_int62 g a ~pos ~len

let split t =
  match t.state with
  | Sx g ->
      (* Jumped copy: non-overlapping for 2^128 draws; then scramble the
         parent so repeated splits give distinct children. *)
      let child = Xoshiro256.copy g in
      Xoshiro256.jump child;
      ignore (Xoshiro256.next_u64 g);
      { state = Sx child; engine = Xoshiro; seed = Splitmix64.mix t.seed }
  | Sp _ | Ss _ ->
      let child_seed = Splitmix64.mix (next_u64 t) in
      create ~engine:t.engine ~seed:child_seed ()

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_u64 t) 34)

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: bound must be positive";
  if n = 1 then 0
  else begin
    (* Smallest all-ones mask covering [n - 1], then rejection: unbiased
       and at most one expected retry. *)
    let m = n - 1 in
    let mask = ref m in
    List.iter (fun s -> mask := !mask lor (!mask lsr s)) [ 1; 2; 4; 8; 16; 32 ];
    let mask = !mask in
    let rec draw () =
      let v = Int64.to_int (Int64.shift_right_logical (next_u64 t) 2) land mask in
      if v < n then v else draw ()
    in
    draw ()
  end

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int_below t (hi - lo + 1)

let float_unit t =
  (* 53 high bits of the draw, scaled by 2^-53: uniform on [0,1). *)
  let bits = Int64.shift_right_logical (next_u64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let bool t = Int64.logand (next_u64 t) 1L = 1L

let engine_name = function
  | Xoshiro -> "xoshiro256**"
  | Pcg -> "pcg32"
  | Splitmix -> "splitmix64"

let engine_of_name = function
  | "xoshiro256**" -> Some Xoshiro
  | "pcg32" -> Some Pcg
  | "splitmix64" -> Some Splitmix
  | _ -> None

let pp ppf t = Format.fprintf ppf "%s(seed=%Ld)" (engine_name t.engine) t.seed
