let check_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Sampler.%s: probability %g not in [0,1]" name p)

let bernoulli rng ~p =
  check_prob "bernoulli" p;
  Rng.float_unit rng < p

(* Inversion by sequential search (BINV).  Numerically safe only while
   [n*p] is moderate, which [binomial] guarantees by chunking. *)
let binv rng n p =
  if p = 0. || n = 0 then 0
  else if p = 1. then n
  else begin
    let q = 1. -. p in
    let s = p /. q in
    let a = float_of_int (n + 1) *. s in
    let r0 = q ** float_of_int n in
    let rec attempt () =
      let u = ref (Rng.float_unit rng) in
      let x = ref 0 in
      let r = ref r0 in
      let rec walk () =
        if !u <= !r then !x
        else begin
          u := !u -. !r;
          incr x;
          if !x > n then
            (* Floating round-off pushed the search past the support:
               restart the draw; this has probability ~2^-52. *)
            attempt ()
          else begin
            r := !r *. (a /. float_of_int !x -. s);
            walk ()
          end
        end
      in
      walk ()
    in
    attempt ()
  end

let binv_chunked rng n p =
  (* Bin(n,p) = sum of independent Bin(n_i, p): exact decomposition that
     keeps every chunk's mean below [max_mean] so BINV stays stable. *)
  let max_mean = 32. in
  if p = 0. || n = 0 then 0
  else begin
    let chunk =
      (* Compare in float space first: for tiny (even subnormal) [p] the
         quotient overflows the int range and [int_of_float] on such
         values is unspecified, so never convert it unless it is known to
         be below [n]. *)
      let c = max_mean /. p in
      if c >= float_of_int n then n
      else
        let c = int_of_float c in
        if c < 1 then 1 else c
    in
    let rec go remaining acc =
      if remaining = 0 then acc
      else begin
        let m = if remaining > chunk then chunk else remaining in
        go (remaining - m) (acc + binv rng m p)
      end
    in
    go n 0
  end

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Sampler.binomial: negative n";
  check_prob "binomial" p;
  (* Deterministic edges consume no randomness — callers that interleave
     binomial draws with other uses of the same stream rely on this. *)
  if n = 0 || p = 0. then 0
  else if p = 1. then n
  else if p > 0.5 then
    (* Symmetry keeps the inner inversion on the light side; this is also
       what makes p near 1 numerically safe (1 - p is exact there). *)
    n - binv_chunked rng n (1. -. p)
  else binv_chunked rng n p

let geometric rng ~p =
  if not (p > 0. && p <= 1.) then invalid_arg "Sampler.geometric: p not in (0,1]";
  if p = 1. then 0
  else begin
    let u = 1. -. Rng.float_unit rng in
    (* u in (0,1]: log is finite. *)
    int_of_float (Float.log u /. Float.log1p (-.p))
  end

let rec poisson rng ~lambda =
  if lambda < 0. then invalid_arg "Sampler.poisson: negative lambda";
  if lambda = 0. then 0
  else if lambda <= 30. then begin
    (* Knuth multiplication method: exact for small lambda. *)
    let limit = Float.exp (-.lambda) in
    let rec go k prod =
      let prod = prod *. Rng.float_unit rng in
      if prod <= limit then k else go (k + 1) prod
    in
    go 0 1.
  end
  else
    (* Exact additive split of the Poisson law. *)
    poisson rng ~lambda:(lambda /. 2.) + poisson rng ~lambda:(lambda /. 2.)

let exponential rng ~rate =
  if not (rate > 0.) then invalid_arg "Sampler.exponential: rate must be > 0";
  -.Float.log (1. -. Rng.float_unit rng) /. rate

let gaussian rng ~mu ~sigma =
  let rec polar () =
    let u = (2. *. Rng.float_unit rng) -. 1. in
    let v = (2. *. Rng.float_unit rng) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then polar ()
    else u *. Float.sqrt (-2. *. Float.log s /. s)
  in
  mu +. (sigma *. polar ())

let shuffle_in_place rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int_below rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation rng n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place rng a;
  a

let sample_distinct rng ~k ~n =
  if k < 0 || k > n then invalid_arg "Sampler.sample_distinct: need 0 <= k <= n";
  (* Floyd's algorithm: k iterations, no O(n) scratch. *)
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let idx = ref 0 in
  for j = n - k to n - 1 do
    let t = Rng.int_below rng (j + 1) in
    let v = if Hashtbl.mem seen t then j else t in
    Hashtbl.replace seen v ();
    out.(!idx) <- v;
    incr idx
  done;
  out

module Binomial_table = struct
  type t = { n : int; p : float; pmf : float array; cdf : float array }

  let create ~n ~p =
    if n < 0 then invalid_arg "Binomial_table.create: negative n";
    check_prob "Binomial_table.create" p;
    let pmf = Array.make (n + 1) 0. in
    if p = 0. then pmf.(0) <- 1.
    else if p = 1. then pmf.(n) <- 1.
    else begin
      (* Recurrence outward from the mode avoids underflow for every k
         with non-negligible mass; renormalize at the end. *)
      let mode =
        let m = int_of_float (float_of_int (n + 1) *. p) in
        if m > n then n else m
      in
      let q = 1. -. p in
      pmf.(mode) <- 1.;
      (* pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/q *)
      for k = mode to n - 1 do
        pmf.(k + 1) <-
          pmf.(k) *. (float_of_int (n - k) /. float_of_int (k + 1)) *. (p /. q)
      done;
      (* pmf(k-1)/pmf(k) = k/(n-k+1) * q/p *)
      for k = mode downto 1 do
        pmf.(k - 1) <-
          pmf.(k) *. (float_of_int k /. float_of_int (n - k + 1)) *. (q /. p)
      done;
      let total = Array.fold_left ( +. ) 0. pmf in
      Array.iteri (fun i v -> pmf.(i) <- v /. total) pmf
    end;
    let cdf = Array.make (n + 1) 0. in
    let acc = ref 0. in
    Array.iteri
      (fun i v ->
        acc := !acc +. v;
        cdf.(i) <- !acc)
      pmf;
    cdf.(n) <- 1.;
    { n; p; pmf; cdf }

  let draw t rng =
    let u = Rng.float_unit rng in
    (* Smallest k with cdf.(k) > u. *)
    let lo = ref 0 and hi = ref t.n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) > u then hi := mid else lo := mid + 1
    done;
    !lo

  let mean t = float_of_int t.n *. t.p
  let pmf t k = if k < 0 || k > t.n then 0. else t.pmf.(k)
end
