(** Exact uniform-multinomial splitting on a pool of random bits.

    Throwing [count] balls independently and uniformly at random into
    [width] bins, and recording only per-bin counts, samples a uniform
    multinomial.  This module draws that multinomial {e exactly} by
    dyadic decomposition: the range is padded to a power of two, the
    count is split between the two halves of every node with a
    [Bin(c, 1/2)] draw — which is exactly the popcount of [c] fair
    random bits — and balls that land in the padding are re-thrown in
    another pass over the tree (each pass rejects with probability
    [< 1/2], so termination is almost sure and fast).  Once a node's
    count drops to a few balls they are thrown individually with one
    direct [take]-bits draw each, which is exact because every
    remaining range is a power of two.

    No floating point is involved anywhere, so the sampled law is the
    per-ball destination law {e exactly} — the count-based engine built
    on this module is distributionally indistinguishable from the
    per-ball oracle (see [test/test_distributional.ml]) even though the
    two consume randomness differently.

    {2 Stream discipline}

    A pool consumes its generator in fixed batches of [buf_words] words
    via {!Rng.fill_int62} and slices them into bits internally.  The
    number of words consumed is a deterministic function of the
    operation sequence and of the random bits themselves, so a pool
    bound to a per-[(round, shard)] stream ({!Stream.for_shard}) yields
    reproducible draws regardless of what other pools do — the engines
    reset one pool per block per phase and never share streams.
    {!reset} discards any buffered bits, so a given stream always
    starts from its first word. *)

type t
(** A bit pool: a generator plus a buffer of pre-drawn words. *)

val create : ?buf_words:int -> Rng.t -> t
(** [create rng] builds a pool drawing from [rng] in batches of
    [buf_words] (default 256) 62-bit words.  The pool borrows [rng]:
    consuming bits advances it.
    @raise Invalid_argument if [buf_words < 1]. *)

val reset : t -> Rng.t -> unit
(** [reset t rng] rebinds the pool to a fresh generator and discards
    all buffered bits, reusing the allocated buffer. *)

val split : t -> count:int -> width:int -> int array
(** [split t ~count ~width] throws [count] balls uniformly into
    [width] bins and returns the fresh array of per-bin counts (sums to
    [count]).  Convenience wrapper over {!split_bins}. *)

val split_bins : t -> count:int -> width:int -> into:int array -> off:int -> unit
(** [split_bins t ~count ~width ~into ~off] adds the per-bin counts of
    [count] uniform balls over bins [off .. off+width-1] of [into].
    @raise Invalid_argument on a negative count, a width outside
    [[1, 2^50]], or a destination range out of bounds. *)

val split_blocks :
  t -> count:int -> bins:int -> block_bits:int -> into:int array -> unit
(** [split_blocks t ~count ~bins ~block_bits ~into] throws [count]
    balls uniformly into [bins] bins but records only per-block counts:
    ball [b] is accounted to [into.(b lsr block_bits)] (added in
    place).  Same ball law as {!split_bins}, far fewer bits: the
    descent stops at block granularity.
    @raise Invalid_argument on a negative count, [bins] outside
    [[1, 2^50]], [block_bits] outside [[0, 50]], or a destination
    shorter than the block count. *)
