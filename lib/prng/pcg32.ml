type t = { mutable state : int64; inc : int64 }

let multiplier = 6364136223846793005L

let step g = g.state <- Int64.add (Int64.mul g.state multiplier) g.inc

let create_stream ~seed ~stream =
  (* The increment must be odd; [2*stream + 1] maps each stream id to a
     distinct odd increment, the construction from the reference pcg32. *)
  let inc = Int64.logor (Int64.shift_left stream 1) 1L in
  let g = { state = 0L; inc } in
  step g;
  g.state <- Int64.add g.state seed;
  step g;
  g

let create ~seed = create_stream ~seed ~stream:0xDA3E39CB94B95BDBL
let copy g = { state = g.state; inc = g.inc }
let state g = [| g.state; g.inc |]

let of_state s =
  if Array.length s <> 2 then invalid_arg "Pcg32.of_state: expected 2 state words";
  if Int64.logand s.(1) 1L = 0L then
    invalid_arg "Pcg32.of_state: increment must be odd";
  { state = s.(0); inc = s.(1) }

let rotr32 x r =
  if r = 0 then x
  else
    Int32.logor
      (Int32.shift_right_logical x r)
      (Int32.shift_left x (32 - r))

let next_u32 g =
  let old = g.state in
  step g;
  let xorshifted =
    Int64.to_int32
      (Int64.shift_right_logical (Int64.logxor (Int64.shift_right_logical old 18) old) 27)
  in
  let rot = Int64.to_int (Int64.shift_right_logical old 59) in
  rotr32 xorshifted rot

let next_u64 g =
  let hi = Int64.of_int32 (next_u32 g) in
  let lo = Int64.of_int32 (next_u32 g) in
  let mask32 = 0xFFFFFFFFL in
  Int64.logor (Int64.shift_left (Int64.logand hi mask32) 32) (Int64.logand lo mask32)

let fill_int62 g a ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Pcg32.fill_int62: range out of bounds";
  for i = pos to pos + len - 1 do
    Array.unsafe_set a i (Int64.to_int (next_u64 g) land max_int)
  done
