(** Walker/Vose alias method: O(1) sampling from a fixed discrete
    distribution after O(k) preprocessing.

    Used for non-uniform bin-choice experiments (e.g. heterogeneous-rate
    Jackson networks) where the same categorical distribution is drawn
    from millions of times. *)

type t

val create : float array -> t
(** [create weights] preprocesses a distribution proportional to
    [weights].
    @raise Invalid_argument if [weights] is empty, contains a negative or
    non-finite entry, or sums to zero. *)

val draw : t -> Rng.t -> int
(** [draw t rng] returns index [i] with probability
    [weights.(i) / sum weights], in O(1). *)

val size : t -> int
(** Number of categories. *)

val probability : t -> int -> float
(** [probability t i] is the normalized probability of category [i]. *)
