(** xoshiro256** pseudo-random generator (Blackman & Vigna, 2018).

    256-bit state, period [2^256 - 1], excellent statistical quality and
    a cheap [jump] function that advances the stream by [2^128] steps,
    giving up to [2^128] provably non-overlapping parallel substreams.
    This is the default engine of {!Rng}. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] expands [seed] into a full 256-bit state through
    SplitMix64, as recommended by the authors. *)

val copy : t -> t
(** [copy g] is an independent snapshot of [g]'s current state. *)

val next_u64 : t -> int64
(** [next_u64 g] advances [g] and returns 64 uniformly random bits. *)

val jump : t -> unit
(** [jump g] advances [g] by [2^128] steps in place.  Calling [jump] on a
    copy yields a stream guaranteed not to overlap the original for
    [2^128] draws. *)
