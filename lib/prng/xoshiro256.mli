(** xoshiro256** pseudo-random generator (Blackman & Vigna, 2018).

    256-bit state, period [2^256 - 1], excellent statistical quality and
    a cheap [jump] function that advances the stream by [2^128] steps,
    giving up to [2^128] provably non-overlapping parallel substreams.
    This is the default engine of {!Rng}. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] expands [seed] into a full 256-bit state through
    SplitMix64, as recommended by the authors. *)

val copy : t -> t
(** [copy g] is an independent snapshot of [g]'s current state. *)

val state : t -> int64 array
(** [state g] is the current 256-bit state as 4 words — together with
    {!of_state} this is the crash-safe checkpoint representation of the
    stream. *)

val of_state : int64 array -> t
(** [of_state s] rebuilds a generator from 4 state words:
    [of_state (state g)] produces exactly [g]'s future draws.
    @raise Invalid_argument on a wrong length or the all-zero state. *)

val next_u64 : t -> int64
(** [next_u64 g] advances [g] and returns 64 uniformly random bits. *)

val fill_int62 : t -> int array -> pos:int -> len:int -> unit
(** [fill_int62 g a ~pos ~len] stores the low 62 bits of [len]
    successive {!next_u64} draws into [a.(pos) .. a.(pos+len-1)] as
    non-negative native ints.  Bit-compatible with calling [next_u64] in
    a loop, but batched so the state stays in registers.
    @raise Invalid_argument if the range is out of bounds. *)

val jump : t -> unit
(** [jump g] advances [g] by [2^128] steps in place.  Calling [jump] on a
    copy yields a stream guaranteed not to overlap the original for
    [2^128] draws. *)
