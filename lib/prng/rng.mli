(** Unified pseudo-random engine.

    Every stochastic component of the library draws randomness through a
    value of type {!t}, so that each experiment is exactly reproducible
    from a seed and can be re-run under a different generator family to
    check that results are not an artifact of one generator (see
    DESIGN.md §7). *)

type engine = Xoshiro | Pcg | Splitmix
(** Available generator families.  [Xoshiro] — xoshiro256** — is the
    default; [Pcg] (PCG32) is an unrelated family for cross-checks;
    [Splitmix] (SplitMix64) is a fast fallback used mainly in tests. *)

type t
(** A mutable stream of random bits. *)

val create : ?engine:engine -> seed:int64 -> unit -> t
(** [create ~seed ()] builds a fresh stream.  Equal [(engine, seed)]
    pairs give identical streams. *)

val engine : t -> engine
(** [engine t] is the family that backs [t]. *)

val seed : t -> int64
(** [seed t] is the seed [t] was created from (splits derive new ones). *)

val copy : t -> t
(** [copy t] snapshots the stream: the copy and the original then produce
    the same future draws. *)

type snapshot = { snap_engine : engine; snap_seed : int64; words : int64 array }
(** A serializable image of a stream: engine family, originating seed,
    and the engine's raw state words ({!Xoshiro256.state} /
    {!Pcg32.state} / {!Splitmix64.state}).  This is the representation
    crash-safe checkpoints persist. *)

val snapshot : t -> snapshot
(** [snapshot t] captures the exact stream state: a generator rebuilt
    with {!of_snapshot} produces bit-identical future draws. *)

val of_snapshot : snapshot -> t
(** Rebuild a stream from a {!snapshot}.
    @raise Invalid_argument if the state words are invalid for the
    engine (wrong count, all-zero xoshiro state, even pcg increment). *)

val engine_name : engine -> string
(** Stable identifier of the family (["xoshiro256**"], ["pcg32"],
    ["splitmix64"]) — the form persisted in checkpoint files. *)

val engine_of_name : string -> engine option
(** Inverse of {!engine_name}. *)

val split : t -> t
(** [split t] derives a statistically independent child stream and
    advances [t].  For the xoshiro engine the child is additionally
    separated by a [2^128] jump, guaranteeing non-overlap. *)

val next_u64 : t -> int64
(** [next_u64 t] is 64 uniformly random bits. *)

val fill_int62 : t -> int array -> pos:int -> len:int -> unit
(** [fill_int62 t a ~pos ~len] stores the low 62 bits of [len]
    successive {!next_u64} draws into [a.(pos) .. a.(pos+len-1)] as
    non-negative native ints.  The batched fill is bit-compatible with a
    [next_u64] loop on every engine but roughly an order of magnitude
    faster, which is what makes the count-based round kernel
    ({!Multinomial}) viable.
    @raise Invalid_argument if the range is out of bounds. *)

val bits30 : t -> int
(** [bits30 t] is a uniformly random non-negative int in [[0, 2^30)]. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform on [[0, n)].  Unbiased (mask-and-reject).
    @raise Invalid_argument if [n <= 0]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform on the inclusive range
    [[lo, hi]].  @raise Invalid_argument if [hi < lo]. *)

val float_unit : t -> float
(** [float_unit t] is uniform on [[0, 1)] with 53 random bits. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val pp : Format.formatter -> t -> unit
(** Prints the engine name and originating seed (not the state). *)
