type t = {
  prob : float array;  (* acceptance threshold per column *)
  alias : int array;   (* fallback category per column *)
  normalized : float array;
}

let create weights =
  let k = Array.length weights in
  if k = 0 then invalid_arg "Alias.create: empty weight array";
  Array.iter
    (fun w ->
      if not (Float.is_finite w) || w < 0. then
        invalid_arg "Alias.create: weights must be finite and non-negative")
    weights;
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Alias.create: weights sum to zero";
  let normalized = Array.map (fun w -> w /. total) weights in
  (* Vose's stable two-worklist construction. *)
  let scaled = Array.map (fun p -> p *. float_of_int k) normalized in
  let prob = Array.make k 1. in
  let alias = Array.init k (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri
    (fun i s -> if s < 1. then Queue.push i small else Queue.push i large)
    scaled;
  while not (Queue.is_empty small) && not (Queue.is_empty large) do
    let s = Queue.pop small and l = Queue.pop large in
    prob.(s) <- scaled.(s);
    alias.(s) <- l;
    scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
    if scaled.(l) < 1. then Queue.push l small else Queue.push l large
  done;
  (* Leftovers are 1.0 up to round-off. *)
  Queue.iter (fun i -> prob.(i) <- 1.) small;
  Queue.iter (fun i -> prob.(i) <- 1.) large;
  { prob; alias; normalized }

let draw t rng =
  let k = Array.length t.prob in
  let column = Rng.int_below rng k in
  if Rng.float_unit rng < t.prob.(column) then column else t.alias.(column)

let size t = Array.length t.prob
let probability t i = t.normalized.(i)
