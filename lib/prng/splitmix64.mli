(** SplitMix64 pseudo-random generator (Steele, Lea & Flood, OOPSLA 2014).

    A 64-bit state generator with period [2^64] whose output function is a
    strong avalanche mixer.  It is primarily used here to seed the larger
    generators ({!Xoshiro256}, {!Pcg32}) and to derive independent child
    seeds, which is the standard, recommended way to bootstrap the xoshiro
    family. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** [copy g] is an independent snapshot of [g]'s current state. *)

val state : t -> int64 array
(** [state g] is the single state word — the checkpoint representation
    of the stream (see {!of_state}). *)

val of_state : int64 array -> t
(** [of_state s] rebuilds a generator from {!state}'s word.
    @raise Invalid_argument on a wrong length. *)

val next_u64 : t -> int64
(** [next_u64 g] advances [g] and returns 64 uniformly random bits. *)

val fill_int62 : t -> int array -> pos:int -> len:int -> unit
(** [fill_int62 g a ~pos ~len] stores the low 62 bits of [len]
    successive {!next_u64} draws into [a.(pos) .. a.(pos+len-1)] as
    non-negative native ints.
    @raise Invalid_argument if the range is out of bounds. *)

val mix : int64 -> int64
(** [mix z] is the stateless SplitMix64 finalizer: a bijective avalanche
    mixer on 64-bit values.  Useful for hashing seeds. *)
