(* Exact uniform-multinomial splitting over a dyadic tree.

   Throwing [count] balls independently and uniformly into [width] bins
   is equivalent to: pad [width] up to a power of two, recursively split
   the count between the two halves of the range with Bin(c, 1/2) draws,
   and re-throw every ball that lands in the padding.  A Bin(c, 1/2)
   draw is exactly the popcount of [c] fair random bits, so the whole
   procedure runs on a flat pool of random bits — no floating point, no
   per-ball generator calls — while sampling the same law as the
   per-ball kernel bit-for-exactly (see DESIGN notes in the mli). *)

let word_bits = 62

(* 16-bit popcount table: 4 byte-table lookups per 62-bit word. *)
let pop16 =
  let b = Bytes.create 65536 in
  for i = 0 to 65535 do
    let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
    Bytes.unsafe_set b i (Char.unsafe_chr (count i 0))
  done;
  b

let popcount w =
  Char.code (Bytes.unsafe_get pop16 (w land 0xFFFF))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 16) land 0xFFFF))
  + Char.code (Bytes.unsafe_get pop16 ((w lsr 32) land 0xFFFF))
  + Char.code (Bytes.unsafe_get pop16 (w lsr 48))

type t = {
  mutable rng : Rng.t;
  buf : int array;
  mutable pos : int;  (* next unread word in [buf]; [length buf] = empty *)
  mutable cur : int;  (* partially consumed word, low [cur_bits] bits valid *)
  mutable cur_bits : int;
}

let create ?(buf_words = 256) rng =
  if buf_words < 1 then invalid_arg "Multinomial.create: buf_words < 1";
  {
    rng;
    buf = Array.make buf_words 0;
    pos = buf_words;
    cur = 0;
    cur_bits = 0;
  }

let reset t rng =
  t.rng <- rng;
  t.pos <- Array.length t.buf;
  t.cur <- 0;
  t.cur_bits <- 0

let refill t =
  Rng.fill_int62 t.rng t.buf ~pos:0 ~len:(Array.length t.buf);
  t.pos <- 0

let take_word t =
  if t.pos >= Array.length t.buf then refill t;
  let w = Array.unsafe_get t.buf t.pos in
  t.pos <- t.pos + 1;
  w

let binomial_half_slow t c =
  let acc = ref 0 and left = ref c in
  while !left > 0 do
    if t.cur_bits = 0 then begin
      t.cur <- take_word t;
      t.cur_bits <- word_bits
    end;
    let k = if !left < t.cur_bits then !left else t.cur_bits in
    acc := !acc + popcount (t.cur land ((1 lsl k) - 1));
    t.cur <- t.cur lsr k;
    t.cur_bits <- t.cur_bits - k;
    left := !left - k
  done;
  !acc

(* [binomial_half t c] is Bin(c, 1/2): the popcount of [c] fresh bits. *)
let binomial_half t c =
  if c <= t.cur_bits then begin
    (* Fast path: the whole draw fits in the buffered word. *)
    let v = popcount (t.cur land ((1 lsl c) - 1)) in
    t.cur <- t.cur lsr c;
    t.cur_bits <- t.cur_bits - c;
    v
  end
  else binomial_half_slow t c

(* Below this count a node throws its balls individually ([bits] fresh
   bits each) instead of splitting further: the law is identical either
   way, so the threshold is purely a time trade-off between per-node
   splitting overhead and per-ball bit draws (tuned on the n = 10^6
   kernel bench; random bits are ~2.6ns per 62-bit word, so spending a
   few more bits per ball is cheaper than recursing). *)
let leaf_count = 16384

(* Batched per-ball throws: [count] uniform indexes of [bits] bits each,
   incrementing [into.(base + index)].  Consumes whole buffered words and
   discards the sub-[bits] remainder of each — discarding is sound
   because unconsumed bits are iid uniform given everything drawn so
   far, and it keeps the inner loop free of bit-boundary bookkeeping.
   Callers guarantee [base + 2^bits <= length into] ([bits >= 1]), so
   the masked index cannot escape the range. *)
let throw_into t ~count ~bits ~base ~into =
  let mask = (1 lsl bits) - 1 in
  (* Both divisions happen once per call, not once per word. *)
  let per_word = word_bits / bits in
  let avail0 = t.cur_bits / bits in
  let rem = ref count and avail = ref avail0 in
  while !rem > 0 do
    if !avail = 0 then begin
      t.cur <- take_word t;
      t.cur_bits <- word_bits;
      avail := per_word
    end;
    let k = if !rem < !avail then !rem else !avail in
    let cur = ref t.cur in
    for _ = 1 to k do
      let i = base + (!cur land mask) in
      Array.unsafe_set into i (Array.unsafe_get into i + 1);
      cur := !cur lsr bits
    done;
    t.cur <- !cur;
    t.cur_bits <- t.cur_bits - (k * bits);
    avail := !avail - k;
    rem := !rem - k
  done

let max_width = 1 lsl 50

let ceil_log2 w =
  let b = ref 0 in
  while 1 lsl !b < w do incr b done;
  !b

(* Balls landing at [width] and beyond are collected in [rej] and
   re-thrown by the caller in another pass over the tree. *)
let rec go_bins t count lo bits width into off rej =
  if count = 0 then ()
  else if lo >= width then rej := !rej + count
  else if lo + (1 lsl bits) <= width then
    if bits = 0 then
      let i = off + lo in
      into.(i) <- into.(i) + count
    else if count <= leaf_count then
      throw_into t ~count ~bits ~base:(off + lo) ~into
    else begin
      let left = binomial_half t count in
      go_bins t left lo (bits - 1) width into off rej;
      go_bins t (count - left) (lo + (1 lsl (bits - 1))) (bits - 1) width into off rej
    end
  else begin
    (* Range straddles [width]: keep descending. *)
    let left = binomial_half t count in
    go_bins t left lo (bits - 1) width into off rej;
    go_bins t (count - left) (lo + (1 lsl (bits - 1))) (bits - 1) width into off rej
  end

let split_bins t ~count ~width ~into ~off =
  if count < 0 then invalid_arg "Multinomial.split_bins: negative count";
  if width < 1 || width > max_width then
    invalid_arg "Multinomial.split_bins: width out of range";
  if off < 0 || off + width > Array.length into then
    invalid_arg "Multinomial.split_bins: destination range out of bounds";
  if width = 1 then into.(off) <- into.(off) + count
  else begin
    let bits = ceil_log2 width in
    let remaining = ref count in
    while !remaining > 0 do
      let rej = ref 0 in
      go_bins t !remaining 0 bits width into off rej;
      remaining := !rej
    done
  end

let split t ~count ~width =
  let out = Array.make width 0 in
  split_bins t ~count ~width ~into:out ~off:0;
  out

(* Block-granularity variant: identical ball law over [bins] bins, but
   stops descending once a fully valid range fits inside one block and
   accounts whole subtree counts to [bin lsr block_bits]. *)
let rec go_blocks t count lo bits bins block_bits into rej =
  if count = 0 then ()
  else if lo >= bins then rej := !rej + count
  else if lo + (1 lsl bits) <= bins then
    if bits <= block_bits then
      let b = lo lsr block_bits in
      into.(b) <- into.(b) + count
    else if count <= leaf_count then
      (* A uniform bin index in an aligned 2^bits range maps to
         [base + (index lsr block_bits)]; the shifted index is itself
         uniform on [0, 2^(bits-block_bits)), so sample it directly. *)
      throw_into t ~count ~bits:(bits - block_bits) ~base:(lo lsr block_bits)
        ~into
    else begin
      let left = binomial_half t count in
      go_blocks t left lo (bits - 1) bins block_bits into rej;
      go_blocks t (count - left) (lo + (1 lsl (bits - 1))) (bits - 1) bins block_bits into rej
    end
  else begin
    let left = binomial_half t count in
    go_blocks t left lo (bits - 1) bins block_bits into rej;
    go_blocks t (count - left) (lo + (1 lsl (bits - 1))) (bits - 1) bins block_bits into rej
  end

let split_blocks t ~count ~bins ~block_bits ~into =
  if count < 0 then invalid_arg "Multinomial.split_blocks: negative count";
  if bins < 1 || bins > max_width then
    invalid_arg "Multinomial.split_blocks: bins out of range";
  if block_bits < 0 || block_bits > 50 then
    invalid_arg "Multinomial.split_blocks: block_bits out of range";
  let nblocks = ((bins - 1) lsr block_bits) + 1 in
  if Array.length into < nblocks then
    invalid_arg "Multinomial.split_blocks: destination too short";
  let bits = ceil_log2 bins in
  if bits <= block_bits then into.(0) <- into.(0) + count
  else begin
    let remaining = ref count in
    while !remaining > 0 do
      let rej = ref 0 in
      go_blocks t !remaining 0 bits bins block_bits into rej;
      remaining := !rej
    done
  end
