(** PCG32 pseudo-random generator (O'Neill, 2014): the [PCG-XSH-RR]
    variant with 64-bit state and 32-bit output.

    Included as an alternative engine so that statistical results can be
    cross-checked against a generator from an unrelated family (see the
    sampler-independence ablation in DESIGN.md §7). *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator on the default stream. *)

val create_stream : seed:int64 -> stream:int64 -> t
(** [create_stream ~seed ~stream] selects one of [2^63] independent
    streams (distinct [stream] values give statistically independent
    sequences). *)

val copy : t -> t
(** [copy g] is an independent snapshot of [g]'s current state. *)

val state : t -> int64 array
(** [state g] is [[| state; increment |]] — the checkpoint
    representation of the stream (see {!of_state}). *)

val of_state : int64 array -> t
(** [of_state s] rebuilds a generator from {!state}'s two words:
    [of_state (state g)] produces exactly [g]'s future draws.
    @raise Invalid_argument on a wrong length or an even increment. *)

val next_u32 : t -> int32
(** [next_u32 g] advances [g] and returns 32 uniformly random bits. *)

val next_u64 : t -> int64
(** [next_u64 g] concatenates two 32-bit outputs into 64 random bits. *)

val fill_int62 : t -> int array -> pos:int -> len:int -> unit
(** [fill_int62 g a ~pos ~len] stores the low 62 bits of [len]
    successive {!next_u64} draws into [a.(pos) .. a.(pos+len-1)] as
    non-negative native ints.
    @raise Invalid_argument if the range is out of bounds. *)
