(** Exact samplers for the distributions used throughout the library.

    All samplers are exact (no normal approximations): the binomial and
    Poisson samplers use inversion for small means and exact
    divide-and-conquer decompositions for large ones, so tail experiments
    such as the Lemma 5 drift-chain bound are not polluted by sampler
    bias. *)

val bernoulli : Rng.t -> p:float -> bool
(** [bernoulli rng ~p] is [true] with probability [p].
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** [binomial rng ~n ~p] draws from [Bin(n, p)] exactly.  Inversion
    (BINV) when [n*p] is small; otherwise the draw is decomposed into
    independent binomial chunks of small mean and summed, which is an
    exact decomposition of the distribution.  For [p > 0.5] the draw is
    taken as [n - Bin(n, 1-p)] so the inversion always walks the light
    tail.  The deterministic edges [Bin(0, p)], [Bin(n, 0)] and
    [Bin(n, 1)] return without consuming any randomness; subnormal [p]
    is handled without overflow.
    @raise Invalid_argument unless [n >= 0] and [0 <= p <= 1]. *)

val geometric : Rng.t -> p:float -> int
(** [geometric rng ~p] is the number of failures before the first success
    in Bernoulli([p]) trials (support [0, 1, 2, ...]).
    @raise Invalid_argument unless [0 < p <= 1]. *)

val poisson : Rng.t -> lambda:float -> int
(** [poisson rng ~lambda] draws from Poisson([lambda]) exactly, by
    inversion for small [lambda] and by the exact additive split
    [Poisson(l) = Poisson(l/2) + Poisson(l/2)] for large [lambda].
    @raise Invalid_argument if [lambda < 0]. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] draws from Exp([rate]) by inversion.
    @raise Invalid_argument unless [rate > 0]. *)

val gaussian : Rng.t -> mu:float -> sigma:float -> float
(** [gaussian rng ~mu ~sigma] draws from N([mu], [sigma²]) by the
    Marsaglia polar method. *)

val shuffle_in_place : Rng.t -> 'a array -> unit
(** [shuffle_in_place rng a] applies a uniform Fisher–Yates shuffle. *)

val permutation : Rng.t -> int -> int array
(** [permutation rng n] is a uniformly random permutation of [0..n-1]. *)

val sample_distinct : Rng.t -> k:int -> n:int -> int array
(** [sample_distinct rng ~k ~n] draws [k] distinct values uniformly from
    [[0, n)] (Floyd's algorithm), in undefined order.
    @raise Invalid_argument unless [0 <= k <= n]. *)

module Binomial_table : sig
  (** Precomputed inverse-CDF sampler for repeated draws from a fixed
      [Bin(n, p)] — the hot path of the Tetris drift chain, which draws
      [Bin(3n/4, 1/n)] once per round. *)

  type t

  val create : n:int -> p:float -> t
  (** Builds the full CDF over the support [0..n] (computed with a
      mode-centred recurrence so no term underflows).
      @raise Invalid_argument unless [n >= 0] and [0 <= p <= 1]. *)

  val draw : t -> Rng.t -> int
  (** [draw tbl rng] samples by binary search over the CDF. *)

  val mean : t -> float
  (** [n * p]. *)

  val pmf : t -> int -> float
  (** [pmf tbl k] is [P(Bin(n,p) = k)] (0 outside the support). *)
end
