type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let create ~seed =
  let sm = Splitmix64.create ~seed in
  let s0 = Splitmix64.next_u64 sm in
  let s1 = Splitmix64.next_u64 sm in
  let s2 = Splitmix64.next_u64 sm in
  let s3 = Splitmix64.next_u64 sm in
  (* An all-zero state is a fixed point of the transition; SplitMix64 can
     only produce it with probability 2^-256, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let state g = [| g.s0; g.s1; g.s2; g.s3 |]

let of_state s =
  if Array.length s <> 4 then
    invalid_arg "Xoshiro256.of_state: expected 4 state words";
  if s.(0) = 0L && s.(1) = 0L && s.(2) = 0L && s.(3) = 0L then
    invalid_arg "Xoshiro256.of_state: all-zero state is invalid";
  { s0 = s.(0); s1 = s.(1); s2 = s.(2); s3 = s.(3) }

let next_u64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let fill_int62 g a ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length a then
    invalid_arg "Xoshiro256.fill_int62: range out of bounds";
  (* Keeping the whole batch inside one function lets the compiler keep
     the four state words in unboxed registers: ~10x faster than [len]
     calls to [next_u64] through the mutable record fields. *)
  let s0 = ref g.s0 and s1 = ref g.s1 and s2 = ref g.s2 and s3 = ref g.s3 in
  for i = pos to pos + len - 1 do
    let result = Int64.mul (rotl (Int64.mul !s1 5L) 7) 9L in
    let t = Int64.shift_left !s1 17 in
    s2 := Int64.logxor !s2 !s0;
    s3 := Int64.logxor !s3 !s1;
    s1 := Int64.logxor !s1 !s2;
    s0 := Int64.logxor !s0 !s3;
    s2 := Int64.logxor !s2 t;
    s3 := rotl !s3 45;
    Array.unsafe_set a i (Int64.to_int result land max_int)
  done;
  g.s0 <- !s0;
  g.s1 <- !s1;
  g.s2 <- !s2;
  g.s3 <- !s3

(* Jump polynomial coefficients from the reference implementation
   (xoshiro256plusplus.c / xoshiro256starstar.c, same state transition). *)
let jump_coeffs =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL;
     0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump g =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun coeff ->
      for b = 0 to 63 do
        if Int64.logand coeff (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 g.s0;
          s1 := Int64.logxor !s1 g.s1;
          s2 := Int64.logxor !s2 g.s2;
          s3 := Int64.logxor !s3 g.s3
        end;
        ignore (next_u64 g)
      done)
    jump_coeffs;
  g.s0 <- !s0;
  g.s1 <- !s1;
  g.s2 <- !s2;
  g.s3 <- !s3
