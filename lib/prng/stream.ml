(* FNV-1a over the key bytes, then SplitMix64 finalization mixed with
   the master seed. *)
let fnv1a key =
  let offset = 0xCBF29CE484222325L in
  let prime = 0x100000001B3L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    key;
  !h

let seed_of_key ~master ~key =
  Splitmix64.mix (Int64.add (Splitmix64.mix (fnv1a key)) master)

let derive ~master ~key = Rng.create ~seed:(seed_of_key ~master ~key) ()

let derive_indexed ~master ~key ~index =
  derive ~master ~key:(Printf.sprintf "%s/%d" key index)

(* Two distinct odd constants give the (round, shard) lattice the same
   structure as two nested SplitMix64 streams: the round picks a
   per-round master, the shard indexes a stream under it.  Both steps
   end in the full avalanche finalizer, so neighbouring rounds and
   shards are uncorrelated. *)
let round_gamma = 0x9E3779B97F4A7C15L (* SplitMix64's golden gamma *)
let shard_gamma = 0xBF58476D1CE4E5B9L

let seed_for_shard ~master ~round ~shard =
  if round < 0 then invalid_arg "Stream.seed_for_shard: round < 0";
  if shard < 0 then invalid_arg "Stream.seed_for_shard: shard < 0";
  let per_round =
    Splitmix64.mix (Int64.add master (Int64.mul (Int64.of_int round) round_gamma))
  in
  Splitmix64.mix
    (Int64.add per_round (Int64.mul (Int64.of_int shard) shard_gamma))

let for_shard ?engine ~master ~round ~shard () =
  Rng.create ?engine ~seed:(seed_for_shard ~master ~round ~shard) ()
