(* FNV-1a over the key bytes, then SplitMix64 finalization mixed with
   the master seed. *)
let fnv1a key =
  let offset = 0xCBF29CE484222325L in
  let prime = 0x100000001B3L in
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    key;
  !h

let seed_of_key ~master ~key =
  Splitmix64.mix (Int64.add (Splitmix64.mix (fnv1a key)) master)

let derive ~master ~key = Rng.create ~seed:(seed_of_key ~master ~key) ()

let derive_indexed ~master ~key ~index =
  derive ~master ~key:(Printf.sprintf "%s/%d" key index)
